(* Overload-control tests: the client's jittered exponential backoff
   against [Overloaded] pushback, the leader's admission window
   (shed-reads-before-writes, shed-before-queue-entry so a retransmission
   re-admits cleanly), exactly-once execution across an Overloaded →
   retry cycle, the open-loop arrival shapes, and the session pool
   sustaining 10^5 concurrent open-loop clients in one simulation. *)

module H = Engine_harness
module Client = Grid_paxos.Client
module Config = Grid_paxos.Config
module Counter = Grid_services.Counter
module Replica = Grid_paxos.Replica.Make (Counter)
module Ids = Grid_util.Ids
module Runtime = Grid_runtime.Runtime
module Workload = Grid_runtime.Workload
module Scenario = Grid_runtime.Scenario
module Noop = Grid_services.Noop
open Grid_paxos.Types

(* ------------------------------------------------------------------ *)
(* Client backoff *)

let overloaded_reply c ~retry_after_ms =
  let r = Option.get (Client.outstanding c) in
  Receive
    { src = 0;
      msg = Reply_msg { req = r.id; status = Overloaded { retry_after_ms }; payload = "" } }

let ok_reply c =
  let r = Option.get (Client.outstanding c) in
  Receive { src = 0; msg = Reply_msg { req = r.id; status = Ok; payload = "" } }

let fresh_client ?(retry_ms = 100.0) seed =
  let c =
    Client.create ~id:(Ids.Client_id.of_int 1) ~replicas:[ 0; 1; 2 ] ~retry_ms ~seed ()
  in
  (match Client.submit c Write ~payload:"x" with
  | `Sent _ -> ()
  | `Busy -> Alcotest.fail "fresh client busy");
  c

(* Each consecutive pushback doubles the leader's hint, jittered +-25%:
   the armed timer delay and [backoff_until] must sit inside the jitter
   band of [hint * 2^(attempt-1)], capped at max(hint, 8 * retry_ms). *)
let test_backoff_bounds_and_doubling () =
  List.iter
    (fun seed ->
      let c = fresh_client seed in
      (* retry_ms = 100, hint = 40: cap = max(40, 800) = 800. *)
      let expected attempt = Float.min (40.0 *. Float.pow 2.0 (Float.of_int (attempt - 1))) 800.0 in
      for attempt = 1 to 8 do
        let now = Float.of_int attempt *. 10_000.0 in
        let actions, reply = Client.handle c ~now (overloaded_reply c ~retry_after_ms:40.0) in
        Alcotest.(check bool) "pushback is not a completion" true (reply = None);
        let delay =
          match actions with
          | [ After { delay; timer = Client_retry _ } ] -> delay
          | _ -> Alcotest.fail "expected exactly one retry timer"
        in
        let base = expected attempt in
        Alcotest.(check bool)
          (Printf.sprintf "seed %d attempt %d: delay %.1f within [%.1f, %.1f]" seed
             attempt delay (0.75 *. base) (1.25 *. base))
          true
          (delay >= (0.75 *. base) -. 1e-9 && delay <= (1.25 *. base) +. 1e-9);
        Alcotest.(check (float 1e-6)) "backoff_until = now + delay" (now +. delay)
          (Client.backoff_until c)
      done;
      Alcotest.(check int) "all pushbacks counted" 8 (Client.overloaded_count c))
    [ 1; 2; 3; 17; 42 ]

(* The hint always wins over the static cap: a leader asking for more
   than 8 x retry_ms is honored (it knows its backlog better). *)
let test_backoff_honors_large_hint () =
  let c = fresh_client 5 in
  let actions, _ = Client.handle c ~now:0.0 (overloaded_reply c ~retry_after_ms:5_000.0) in
  match actions with
  | [ After { delay; _ } ] ->
    Alcotest.(check bool)
      (Printf.sprintf "delay %.1f >= 0.75 x hint" delay)
      true
      (delay >= 0.75 *. 5_000.0 -. 1e-9)
  | _ -> Alcotest.fail "expected exactly one retry timer"

(* Backstop retry firings inside the backoff window stay silent; the
   first firing at/after the window rebroadcasts to every replica. *)
let test_backoff_suppresses_backstop () =
  let c = fresh_client 9 in
  let seq = (Option.get (Client.outstanding c)).id.seq in
  ignore (Client.handle c ~now:0.0 (overloaded_reply c ~retry_after_ms:40.0));
  let until = Client.backoff_until c in
  Alcotest.(check bool) "window is armed" true (until > 0.0);
  let inside, reply = Client.handle c ~now:(until /. 2.0) (Timer (Client_retry seq)) in
  Alcotest.(check bool) "no traffic inside the window" true (inside = [] && reply = None);
  Alcotest.(check int) "suppressed firing is not a retry" 0 (Client.retry_count c);
  let after_win, _ = Client.handle c ~now:until (Timer (Client_retry seq)) in
  let sends = List.filter (function Send _ -> true | _ -> false) after_win in
  Alcotest.(check int) "rebroadcast to all replicas" 3 (List.length sends);
  Alcotest.(check int) "counted as a retry" 1 (Client.retry_count c)

(* A final reply resets the backoff machinery for the next request. *)
let test_backoff_resets_on_completion () =
  let c = fresh_client 11 in
  ignore (Client.handle c ~now:0.0 (overloaded_reply c ~retry_after_ms:40.0));
  let _, reply = Client.handle c ~now:50.0 (ok_reply c) in
  Alcotest.(check bool) "Ok completes the request" true (reply <> None);
  Alcotest.(check bool) "no pending request" true (Client.outstanding c = None);
  Alcotest.(check bool) "backoff cleared" true (Client.backoff_until c = neg_infinity);
  match Client.submit c Write ~payload:"y" with
  | `Sent actions ->
    (* The fresh request's retry timer is the plain jittered retry_ms,
       not a leftover overload window. *)
    let delay =
      List.find_map (function After { delay; _ } -> Some delay | _ -> None) actions
    in
    (match delay with
    | Some d ->
      Alcotest.(check bool)
        (Printf.sprintf "next request uses plain retry delay (%.1f)" d)
        true
        (d >= 75.0 && d <= 125.0)
    | None -> Alcotest.fail "no retry timer on fresh submit")
  | `Busy -> Alcotest.fail "client busy after completion"

(* ------------------------------------------------------------------ *)
(* Leader admission *)

let add n = Counter.encode_op (Counter.Add n)
let get = Counter.encode_op Counter.Get

let tiny_window c = Config.make ~base:c ~max_inflight:2 ~max_queue:4 ()

(* Occupy the leader: one write in flight (its Accepts left undelivered,
   so no ack ever arrives) plus [qlen] queued writes behind it. *)
let congest t ~qlen =
  H.elect t 0;
  for seq = 1 to qlen + 1 do
    H.submit t (H.client_request ~seq ~rtype:Write ~payload:(add 1) ())
  done;
  Alcotest.(check int) "leader queue depth" qlen (Replica.queue_depth t.replicas.(0))

(* Reads shed once the write queue passes half its bound, while writes
   are still admitted up to the full bound — shed-reads-before-writes. *)
let test_shed_reads_before_writes () =
  let t = H.create ~cfg_tweak:tiny_window () in
  congest t ~qlen:2 (* half of max_queue=4 *);
  ignore (H.take_replies t);
  H.submit t (H.client_request ~client:2 ~seq:1 ~rtype:Read ~payload:get ());
  (match H.take_replies t with
  | [ { status = Overloaded { retry_after_ms }; _ } ] ->
    Alcotest.(check bool)
      (Printf.sprintf "retry_after at least a heartbeat (%.1f)" retry_after_ms)
      true (retry_after_ms >= 20.0)
  | _ -> Alcotest.fail "read should be shed at half the write bound");
  let reads, writes = Replica.stats_shed t.replicas.(0) in
  Alcotest.(check (pair int int)) "one read shed, no writes" (1, 0) (reads, writes);
  (* A write at the same queue depth is still admitted. *)
  H.submit t (H.client_request ~client:3 ~seq:1 ~rtype:Write ~payload:(add 1) ());
  Alcotest.(check (list reject)) "write admitted silently" [] (H.take_replies t);
  Alcotest.(check int) "write joined the queue" 3 (Replica.queue_depth t.replicas.(0))

(* Writes past [max_queue] are shed; a retransmission of an admitted
   (queued) write is absorbed, not shed and not double-queued. *)
let test_shed_writes_at_bound () =
  let t = H.create ~cfg_tweak:tiny_window () in
  congest t ~qlen:4;
  ignore (H.take_replies t);
  H.submit t (H.client_request ~client:2 ~seq:1 ~rtype:Write ~payload:(add 1) ());
  (match H.take_replies t with
  | [ { status = Overloaded _; _ } ] -> ()
  | _ -> Alcotest.fail "write past the bound should be shed");
  (* Retransmit a write that is already queued: silently absorbed. *)
  H.submit t (H.client_request ~seq:3 ~rtype:Write ~payload:(add 1) ());
  Alcotest.(check (list reject)) "retransmission absorbed" [] (H.take_replies t);
  Alcotest.(check int) "queue unchanged" 4 (Replica.queue_depth t.replicas.(0))

(* A retransmitted read already in the window is not re-shed: it holds
   its admission slot until answered. *)
let test_admitted_read_retransmission_kept () =
  let t = H.create ~cfg_tweak:tiny_window () in
  H.elect t 0;
  (* Admit two reads but withhold the confirms so they stay in flight. *)
  let no_confirms _ _ msg = msg_kind msg <> "read_confirm" in
  H.submit t (H.client_request ~client:2 ~seq:1 ~rtype:Read ~payload:get ());
  H.submit t (H.client_request ~client:3 ~seq:1 ~rtype:Read ~payload:get ());
  H.deliver_all ~filter:no_confirms t;
  Alcotest.(check int) "read window full" 2 (Replica.reads_inflight t.replicas.(0));
  ignore (H.take_replies t);
  (* A third, fresh read is shed... *)
  H.submit t (H.client_request ~client:4 ~seq:1 ~rtype:Read ~payload:get ());
  (match H.take_replies t with
  | [ { status = Overloaded _; _ } ] -> ()
  | _ -> Alcotest.fail "fresh read past max_inflight should be shed");
  (* ...but a retransmission of an admitted one is not. *)
  H.submit t (H.client_request ~client:2 ~seq:1 ~rtype:Read ~payload:get ());
  Alcotest.(check (list reject)) "retransmitted read not re-shed" []
    (H.take_replies t);
  let reads, _ = Replica.stats_shed t.replicas.(0) in
  Alcotest.(check int) "exactly one shed read" 1 reads

(* The full pushback cycle executes exactly once: shed a write, drain
   the queue, retransmit it — it commits once, and a further duplicate
   is answered from the dedup cache without re-executing. *)
let test_no_duplicate_execution_after_retry () =
  let t = H.create ~cfg_tweak:(fun c -> Config.make ~base:c ~max_queue:1 ()) () in
  congest t ~qlen:1;
  ignore (H.take_replies t);
  let shed_req = H.client_request ~client:2 ~seq:1 ~rtype:Write ~payload:(add 100) () in
  H.submit t shed_req;
  (match H.take_replies t with
  | [ { status = Overloaded _; _ } ] -> ()
  | _ -> Alcotest.fail "expected the write to be shed");
  (* Release the held acks: the two congesting writes commit. *)
  H.deliver_all t;
  ignore (H.take_replies t);
  Alcotest.(check int) "backlog drained" 2 (Replica.commit_point t.replicas.(0));
  (* The client's backoff window closes and it retransmits: the request
     must be admittable from scratch (shedding never touched the
     queued-id set) and commit exactly once. *)
  H.submit t shed_req;
  H.deliver_all t;
  (match H.take_replies t with
  | [ { status = Ok; payload; _ } ] ->
    Alcotest.(check int) "write applied once on retry" 102 (Counter.decode_result payload)
  | rs -> Alcotest.failf "expected one Ok reply, got %d" (List.length rs));
  (* A duplicate after commit re-answers from the dedup cache. *)
  H.submit t shed_req;
  H.deliver_all t;
  (match H.take_replies t with
  | [ { status = Ok; payload; _ } ] ->
    Alcotest.(check int) "duplicate re-answered, not re-executed" 102
      (Counter.decode_result payload)
  | rs -> Alcotest.failf "expected one cached reply, got %d" (List.length rs));
  Alcotest.(check int) "no further instance committed" 3
    (Replica.commit_point t.replicas.(0))

(* A freshly elected leader still re-proposing recovered instances must
   not execute reads on its stale state (the old leader may already have
   answered from those instances): the read is deferred and runs once
   recovery commits. Regression for the stale read the overload stress
   tier surfaced (seed 124: read answered 16 after its predecessor saw
   24, across a crash-free leader change). *)
let test_read_deferred_during_recovery () =
  let t = H.create () in
  H.elect t 0;
  (* Commit a write on r0 but withhold the Commit broadcast: followers
     have accepted instance 1 without learning it committed. *)
  H.submit t (H.client_request ~seq:1 ~rtype:Write ~payload:(add 5) ());
  H.deliver_all ~filter:(fun _ _ m -> msg_kind m <> "commit") t;
  Alcotest.(check int) "r0 committed" 1 (Replica.commit_point t.replicas.(0));
  Alcotest.(check int) "r1 has not" 0 (Replica.commit_point t.replicas.(1));
  (match H.take_replies t with
  | [ { status = Ok; payload; _ } ] ->
    Alcotest.(check int) "old leader answered 5" 5 (Counter.decode_result payload)
  | _ -> Alcotest.fail "expected the write's reply");
  H.drop t ~filter:(fun _ _ m -> msg_kind m = "commit");
  (* Elect r1, delivering only the election traffic and withholding the
     old leader's prepare_ack (whose snapshot would catch r1 up at
     once): r1 wins with r2's ack, holding instance 1 only as a
     recovered accepted entry whose re-proposal is still in flight. *)
  H.feed t 1 (Timer Suspicion_tick);
  H.advance t 1000.0;
  H.feed t 1 (Timer Suspicion_tick);
  H.advance t 50.0;
  ignore (H.fire t 1 (function Stability_check _ -> true | _ -> false));
  let election src _ m =
    msg_kind m = "prepare" || (msg_kind m = "prepare_ack" && src <> 0)
  in
  H.deliver_all ~filter:election t;
  Alcotest.(check bool) "r1 leads" true (Replica.is_leader t.replicas.(1));
  Alcotest.(check int) "r1 still behind" 0 (Replica.commit_point t.replicas.(1));
  (* A read lands in the recovery window: no reply may go out, stale or
     otherwise, and it must not be shed — it waits. *)
  H.submit t (H.client_request ~client:2 ~seq:1 ~rtype:Read ~payload:get ());
  Alcotest.(check (list reject)) "no reply during recovery" [] (H.take_replies t);
  (* Recovery commits; the deferred read runs on the caught-up state.
     (The re-proposal also re-sends the write's stored reply, so filter
     for the read's client.) *)
  H.deliver_all t;
  match
    List.filter
      (fun (r : reply) -> Grid_util.Ids.Client_id.to_int r.req.client = 2)
      (H.take_replies t)
  with
  | [ { status = Ok; payload; _ } ] ->
    Alcotest.(check int) "read reflects the recovered write" 5
      (Counter.decode_result payload)
  | rs -> Alcotest.failf "expected the deferred read's reply, got %d" (List.length rs)

(* ------------------------------------------------------------------ *)
(* Arrival shapes *)

let test_arrival_shapes () =
  let burst = Workload.Burst { period_ms = 100.0; duty = 0.2; factor = 5.0 } in
  Alcotest.(check (float 1e-9)) "burst: inside the window" 5.0
    (Workload.relative_rate burst ~t:10.0);
  Alcotest.(check (float 1e-9)) "burst: outside the window" 1.0
    (Workload.relative_rate burst ~t:50.0);
  Alcotest.(check (float 1e-9)) "burst: next period bursts again" 5.0
    (Workload.relative_rate burst ~t:110.0);
  Alcotest.(check (float 1e-9)) "burst peak" 5.0 (Workload.peak_rate burst);
  let diurnal = Workload.Diurnal { period_ms = 1000.0; trough = 0.25 } in
  Alcotest.(check (float 1e-6)) "diurnal: noon" 1.0
    (Workload.relative_rate diurnal ~t:250.0);
  Alcotest.(check (float 1e-6)) "diurnal: midnight" 0.25
    (Workload.relative_rate diurnal ~t:750.0);
  Alcotest.(check (float 1e-9)) "diurnal peak is the nominal rate" 1.0
    (Workload.peak_rate diurnal)

(* ------------------------------------------------------------------ *)
(* Session pool + open loop *)

module OL = Workload.Make (Noop)

let check_accounting (r : Workload.open_loop_results) =
  Alcotest.(check int) "arrivals = completed + dropped + still_inflight"
    r.arrivals
    (r.completed + r.dropped + r.still_inflight)

(* Burst arrivals through the session pool: the realized rate is the
   nominal rate scaled by the shape's mean relative rate (here
   0.2*5 + 0.8 = 1.8x), and the accounting identity holds. *)
let test_sessions_burst_shape () =
  let t =
    OL.RT.create ~cfg:(Config.default ~n:3) ~scenario:Scenario.sysnet ~seed:21 ()
  in
  ignore (OL.RT.await_leader t);
  let pool = OL.Sess.create t in
  let r =
    OL.run_sessions pool ~seed:23 ~rps:1_000.0 ~duration_ms:400.0
      ~shape:(Workload.Burst { period_ms = 100.0; duty = 0.2; factor = 5.0 })
      ~item:(Runtime.Do Noop.Noop_write) ()
  in
  check_accounting r;
  Alcotest.(check bool)
    (Printf.sprintf "burst arrivals ~720 (%d)" r.arrivals)
    true
    (r.arrivals > 500 && r.arrivals < 950);
  Alcotest.(check int) "pool never exhausted" 0 r.dropped;
  Alcotest.(check bool) "sessions recycled, not one per arrival" true
    (OL.Sess.sessions pool < r.arrivals)

(* The tentpole scale claim: one simulation sustains >= 10^5 concurrent
   open-loop sessions. Arrivals outrun a deliberately slow service
   (5 ms/request ~ 200 req/s), so nearly every arrival is still in
   flight when the run ends — each holding a live session. *)
let test_hundred_thousand_sessions () =
  let cfg = Config.make ~base:(Config.default ~n:3) ~execution_cost_ms:5.0 () in
  let t = OL.RT.create ~cfg ~scenario:Scenario.sysnet ~seed:31 () in
  ignore (OL.RT.await_leader t);
  let pool = OL.Sess.create t in
  let r =
    OL.run_sessions pool ~seed:33 ~rps:300_000.0 ~duration_ms:400.0 ~grace_ms:0.0
      ~item:(Runtime.Do Noop.Noop_write) ()
  in
  check_accounting r;
  Alcotest.(check int) "no arrival was refused" 0 r.dropped;
  Alcotest.(check bool)
    (Printf.sprintf "peak concurrent sessions >= 100000 (%d)"
       (OL.Sess.peak_in_flight pool))
    true
    (OL.Sess.peak_in_flight pool >= 100_000);
  Alcotest.(check bool)
    (Printf.sprintf "still in flight at the horizon (%d)" r.still_inflight)
    true
    (r.still_inflight >= 100_000)

let suite =
  [
    ( "overload.client_backoff",
      [
        Alcotest.test_case "jitter bounds and doubling" `Quick
          test_backoff_bounds_and_doubling;
        Alcotest.test_case "large retry_after hints are honored" `Quick
          test_backoff_honors_large_hint;
        Alcotest.test_case "backstop suppressed inside the window" `Quick
          test_backoff_suppresses_backstop;
        Alcotest.test_case "completion resets the backoff" `Quick
          test_backoff_resets_on_completion;
      ] );
    ( "overload.admission",
      [
        Alcotest.test_case "reads shed before writes" `Quick
          test_shed_reads_before_writes;
        Alcotest.test_case "writes shed at the queue bound" `Quick
          test_shed_writes_at_bound;
        Alcotest.test_case "admitted read retransmission kept" `Quick
          test_admitted_read_retransmission_kept;
        Alcotest.test_case "no duplicate execution after retry" `Quick
          test_no_duplicate_execution_after_retry;
        Alcotest.test_case "reads deferred during leader recovery" `Quick
          test_read_deferred_during_recovery;
      ] );
    ( "overload.open_loop",
      [
        Alcotest.test_case "arrival shapes" `Quick test_arrival_shapes;
        Alcotest.test_case "burst arrivals through the session pool" `Quick
          test_sessions_burst_shape;
        Alcotest.test_case "10^5 concurrent sessions" `Slow
          test_hundred_thousand_sessions;
      ] );
  ]
