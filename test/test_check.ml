(* Tests for the checkers themselves, plus the randomized-schedule
   exploration of the protocol (the heavyweight safety net). *)

module Agreement = Grid_check.Agreement
module Lin = Grid_check.Linearizability
module MC = Grid_check.Mcheck.Make (Grid_services.Counter)
module Counter = Grid_services.Counter
module Ids = Grid_util.Ids
open Grid_paxos.Types

let mk_req seq : request =
  { id = Ids.Request_id.make ~client:(Ids.Client_id.of_int 1) ~seq;
    rtype = Write; payload = "p"; trace = no_trace }

(* ------------------------------------------------------------------ *)
(* Agreement checker *)

let test_agreement_clean () =
  let h = [ (1, [ mk_req 1 ], "s1"); (2, [ mk_req 2 ], "s2") ] in
  Alcotest.(check int) "no violations" 0 (List.length (Agreement.check [| h; h; h |]))

let test_agreement_value_mismatch () =
  let a = [ (1, [ mk_req 1 ], "s1") ] in
  let b = [ (1, [ mk_req 2 ], "s1") ] in
  match Agreement.check [| a; b |] with
  | [ Agreement.Value_mismatch { instance = 1; _ } ] -> ()
  | v -> Alcotest.fail (Printf.sprintf "expected value mismatch, got %d" (List.length v))

let test_agreement_state_mismatch () =
  let a = [ (1, [ mk_req 1 ], "s1") ] in
  let b = [ (1, [ mk_req 1 ], "DIFFERENT") ] in
  match Agreement.check [| a; b |] with
  | [ Agreement.State_mismatch { instance = 1; _ } ] -> ()
  | _ -> Alcotest.fail "expected state mismatch"

let test_agreement_hole_tolerated () =
  (* Snapshot catch-up leaves holes; not a violation. *)
  let full = [ (1, [ mk_req 1 ], "s1"); (2, [ mk_req 2 ], "s2"); (3, [ mk_req 3 ], "s3") ] in
  let holey = [ (1, [ mk_req 1 ], "s1"); (3, [ mk_req 3 ], "s3") ] in
  Alcotest.(check int) "hole ok" 0 (List.length (Agreement.check [| full; holey |]))

let test_agreement_order_violation () =
  let bad = [ (2, [ mk_req 2 ], "s2"); (1, [ mk_req 1 ], "s1") ] in
  match Agreement.check [| bad |] with
  | [ Agreement.Order { instance = 1; _ } ] -> ()
  | _ -> Alcotest.fail "expected order violation"

(* ------------------------------------------------------------------ *)
(* Linearizability checker *)

let ev client op result invoked_at responded_at =
  { Lin.client; op; result; invoked_at; responded_at }

let test_lin_sequential_ok () =
  let h =
    [
      ev 1 (Lin.Counter_model.Add 5) 5 0.0 1.0;
      ev 1 Lin.Counter_model.Get 5 2.0 3.0;
      ev 1 (Lin.Counter_model.Add 2) 7 4.0 5.0;
    ]
  in
  Alcotest.(check bool) "sequential history linearizable" true (Lin.Counter.check h)

let test_lin_concurrent_ok () =
  (* Two overlapping adds; a concurrent read may see either serialization
     point. Result 5 is legal (read before the +2 took effect). *)
  let h =
    [
      ev 1 (Lin.Counter_model.Add 5) 5 0.0 10.0;
      ev 2 (Lin.Counter_model.Add 2) 7 1.0 9.0;
      ev 3 Lin.Counter_model.Get 5 2.0 8.0;
    ]
  in
  Alcotest.(check bool) "concurrent history linearizable" true (Lin.Counter.check h)

let test_lin_stale_read_rejected () =
  (* The read starts strictly after the add completed, yet returns the
     pre-add value: not linearizable. *)
  let h =
    [
      ev 1 (Lin.Counter_model.Add 5) 5 0.0 1.0;
      ev 2 Lin.Counter_model.Get 0 2.0 3.0;
    ]
  in
  Alcotest.(check bool) "stale read rejected" false (Lin.Counter.check h)

let test_lin_wrong_result_rejected () =
  let h = [ ev 1 (Lin.Counter_model.Add 5) 99 0.0 1.0 ] in
  Alcotest.(check bool) "wrong result rejected" false (Lin.Counter.check h)

let test_lin_kv_model () =
  let open Lin.Kv_model in
  let h =
    [
      ev 1 (Put ("k", "v")) Ok 0.0 1.0;
      ev 2 (Get "k") (Found (Some "v")) 2.0 3.0;
      ev 1 (Del "k") Ok 4.0 5.0;
      ev 2 (Get "k") (Found None) 6.0 7.0;
    ]
  in
  Alcotest.(check bool) "kv history linearizable" true (Lin.Kv.check h);
  let bad = [ ev 1 (Put ("k", "v")) Ok 0.0 1.0; ev 2 (Get "k") (Found None) 2.0 3.0 ] in
  Alcotest.(check bool) "lost update rejected" false (Lin.Kv.check bad)

(* ------------------------------------------------------------------ *)
(* Randomized schedule exploration of the real protocol. *)

let mc_requests =
  [
    (1, Write, Counter.encode_op (Counter.Add 5));
    (2, Write, Counter.encode_op (Counter.Add 7));
    (1, Read, Counter.encode_op Counter.Get);
    (2, Write, Counter.encode_op (Counter.Add 1));
    (3, Read, Counter.encode_op Counter.Get);
  ]

let explore ~crash_prob ~seeds () =
  let violations = ref 0 and unreplied = ref 0 in
  for seed = 1 to seeds do
    let o = MC.run ~seed ~steps:2_000 ~crash_prob ~requests:mc_requests () in
    if o.violations <> [] then incr violations;
    if not o.all_replied then incr unreplied
  done;
  (!violations, !unreplied)

let test_mcheck_benign () =
  let violations, unreplied = explore ~crash_prob:0.0 ~seeds:150 () in
  Alcotest.(check int) "no agreement violations" 0 violations;
  Alcotest.(check int) "all requests answered" 0 unreplied

let test_mcheck_with_crashes () =
  let violations, _unreplied = explore ~crash_prob:0.003 ~seeds:150 () in
  (* Liveness holds after the drain (crashes stop); safety always. *)
  Alcotest.(check int) "no agreement violations under crashes" 0 violations

let test_mcheck_deterministic_replay () =
  let o1 = MC.run ~seed:77 ~steps:1_500 ~crash_prob:0.002 ~requests:mc_requests () in
  let o2 = MC.run ~seed:77 ~steps:1_500 ~crash_prob:0.002 ~requests:mc_requests () in
  Alcotest.(check int) "same deliveries" o1.delivered o2.delivered;
  Alcotest.(check int) "same timer fires" o1.timer_fires o2.timer_fires;
  Alcotest.(check (array int)) "same commit points" o1.committed o2.committed

(* Convert model-checker replies into a counter history: each client's
   ops are sequential (program order via invocation windows), ordering
   across clients unknown, so cross-client events overlap fully. A
   retransmitted read may be answered twice (reads are not
   deduplicated); the client accepts the first reply. *)
let counter_history (replies : reply list) =
  let seen = Hashtbl.create 8 in
  let first_replies =
    List.filter
      (fun (r : reply) ->
        let key = (r.req.client, r.req.seq) in
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.replace seen key ();
          true
        end)
      replies
  in
  List.filter_map
    (fun (r : reply) ->
      let client = Grid_util.Ids.Client_id.to_int r.req.client in
      let seq = r.req.seq in
      let base = Float.of_int (seq * 10) in
      let op_of (_, rt, payload) =
        match rt with
        | Read -> Some Lin.Counter_model.Get
        | Write -> Some (Lin.Counter_model.Add
                           (match Counter.decode_op payload with
                           | Counter.Add n -> n
                           | Counter.Get -> 0))
        | _ -> None
      in
      let rec find i = function
        | [] -> None
        | ((c, _, _) as req) :: rest ->
          if c = client then
            if i = seq - 1 then op_of req else find (i + 1) rest
          else find i rest
      in
      match find 0 mc_requests with
      | Some op ->
        Some
          {
            Lin.client;
            op;
            result = Counter.decode_result r.payload;
            invoked_at = base;
            responded_at = base +. 1000.0;
          }
      | None -> None)
    first_replies

let test_mcheck_reads_linearizable () =
  for seed = 1 to 40 do
    let o = MC.run ~seed ~steps:2_000 ~crash_prob:0.0 ~requests:mc_requests () in
    if o.all_replied then
      (* Writes return the new counter value, so results are usable. *)
      if not (Lin.Counter.check (counter_history o.replies)) then
        Alcotest.fail (Printf.sprintf "seed %d: non-linearizable history" seed)
  done

(* ------------------------------------------------------------------ *)
(* Wire-codec model: every delivery roundtrips through the codec its
   link would negotiate over TCP; [upgrades] script rolling upgrades. *)

let test_mcheck_wire_static_versions () =
  (* Homogeneous and mixed static clusters: the per-link min-negotiated
     codec must roundtrip every message — zero wire errors, safety and
     liveness intact. *)
  List.iter
    (fun versions ->
      let label =
        String.concat "" (Array.to_list (Array.map string_of_int versions))
      in
      let o =
        MC.explore ~seed:11 ~steps:2_000 ~requests:mc_requests
          ~wire_versions:versions ()
      in
      Alcotest.(check int) (label ^ ": no violations") 0 (List.length o.violations);
      Alcotest.(check (list string)) (label ^ ": no wire errors") [] o.wire_errors;
      Alcotest.(check bool) (label ^ ": all replied") true o.all_replied)
    [ [| 1; 1; 1 |]; [| 2; 2; 2 |]; [| 1; 2; 1 |]; [| 2; 1; 2 |] ]

let test_mcheck_rolling_upgrade () =
  (* The acceptance scenario: 3 replicas start on V1 and are upgraded
     one at a time — each upgrade a crash-consistent bounce after which
     the victim speaks V2 — under a nemesis that also injects crashes,
     duplication and reordering. Safety oracles, the wire model and
     linearizability must stay green through every mixed-version
     configuration the cluster passes through. *)
  let nemesis =
    { Grid_check.Mcheck.no_faults with
      crash_prob = 0.002;
      dup_prob = 0.01;
      reorder_prob = 0.01;
    }
  in
  let upgrades = [ (400, 0, 2); (900, 1, 2); (1400, 2, 2) ] in
  for seed = 1 to 25 do
    let o =
      MC.explore ~seed ~steps:2_500 ~nemesis ~requests:mc_requests
        ~wire_versions:[| 1; 1; 1 |] ~upgrades ()
    in
    if o.violations <> [] then
      Alcotest.fail (Printf.sprintf "seed %d: agreement violation" seed);
    if o.wire_errors <> [] then
      Alcotest.fail
        (Printf.sprintf "seed %d: wire errors: %s" seed
           (String.concat "; " o.wire_errors));
    Alcotest.(check int)
      (Printf.sprintf "seed %d: all three upgrades fired" seed)
      3 o.upgraded;
    if not o.all_replied then
      Alcotest.fail (Printf.sprintf "seed %d: unreplied requests" seed);
    if not (Lin.Counter.check (counter_history o.replies)) then
      Alcotest.fail
        (Printf.sprintf "seed %d: non-linearizable mixed-version history" seed)
  done

let test_mcheck_upgrade_replay_deterministic () =
  (* A recorded plan containing Upgrade_at events replays exactly. *)
  let nemesis = { Grid_check.Mcheck.no_faults with crash_prob = 0.002 } in
  let upgrades = [ (300, 0, 2); (800, 1, 2) ] in
  let o1 =
    MC.explore ~seed:42 ~steps:1_500 ~nemesis ~requests:mc_requests
      ~wire_versions:[| 1; 1; 1 |] ~upgrades ()
  in
  Alcotest.(check bool) "plan records the upgrades" true
    (List.exists
       (function Grid_check.Mcheck.Upgrade_at _ -> true | _ -> false)
       o1.plan);
  let o2 =
    MC.replay ~seed:42 ~steps:1_500 ~requests:mc_requests
      ~wire_versions:[| 1; 1; 1 |] ~plan:o1.plan ()
  in
  Alcotest.(check int) "same upgrades" o1.upgraded o2.upgraded;
  Alcotest.(check int) "same deliveries" o1.delivered o2.delivered;
  Alcotest.(check (array int)) "same commit points" o1.committed o2.committed;
  Alcotest.(check (list string)) "replay also wire-clean" [] o2.wire_errors

let suite =
  [
    ( "check.agreement",
      [
        Alcotest.test_case "clean histories" `Quick test_agreement_clean;
        Alcotest.test_case "value mismatch" `Quick test_agreement_value_mismatch;
        Alcotest.test_case "state mismatch" `Quick test_agreement_state_mismatch;
        Alcotest.test_case "snapshot hole tolerated" `Quick test_agreement_hole_tolerated;
        Alcotest.test_case "order violation" `Quick test_agreement_order_violation;
      ] );
    ( "check.linearizability",
      [
        Alcotest.test_case "sequential ok" `Quick test_lin_sequential_ok;
        Alcotest.test_case "concurrent ok" `Quick test_lin_concurrent_ok;
        Alcotest.test_case "stale read rejected" `Quick test_lin_stale_read_rejected;
        Alcotest.test_case "wrong result rejected" `Quick test_lin_wrong_result_rejected;
        Alcotest.test_case "kv model" `Quick test_lin_kv_model;
      ] );
    ( "check.mcheck",
      [
        Alcotest.test_case "150 benign schedules" `Slow test_mcheck_benign;
        Alcotest.test_case "150 crashy schedules" `Slow test_mcheck_with_crashes;
        Alcotest.test_case "seeded replay is deterministic" `Quick
          test_mcheck_deterministic_replay;
        Alcotest.test_case "reply histories linearizable" `Slow
          test_mcheck_reads_linearizable;
      ] );
    ( "check.mcheck_wire",
      [
        Alcotest.test_case "static version mixes clean" `Quick
          test_mcheck_wire_static_versions;
        Alcotest.test_case "rolling upgrade under nemesis" `Slow
          test_mcheck_rolling_upgrade;
        Alcotest.test_case "upgrade plans replay deterministically" `Quick
          test_mcheck_upgrade_replay_deterministic;
      ] );
  ]
