(* Engine-level protocol tests: precise scripted scenarios against single
   replica engines, including the paper's own §3.3 recovery narrative. *)

module H = Engine_harness
module Counter = Grid_services.Counter
module Replica = Grid_paxos.Replica.Make (Counter)
module Ids = Grid_util.Ids
open Grid_paxos.Types

let add n = Counter.encode_op (Counter.Add n)
let get = Counter.encode_op Counter.Get

let commit_n t ~start ~count =
  for seq = start to start + count - 1 do
    H.submit t (H.client_request ~seq ~rtype:Write ~payload:(add 1) ());
    H.deliver_all t
  done

(* ------------------------------------------------------------------ *)

let test_write_message_pattern () =
  (* One write: leader broadcasts Accept to both followers, each acks,
     leader commits and replies — the §3.3 message pattern. *)
  let t = H.create () in
  H.elect t 0;
  H.submit t (H.client_request ~seq:1 ~rtype:Write ~payload:(add 5) ());
  (* Before any delivery: two pending Accepts (plus heartbeats already
     drained by elect). *)
  let accepts =
    List.filter (fun k -> k = "accept") (H.pending_kinds t)
  in
  Alcotest.(check int) "accept broadcast to both followers" 2 (List.length accepts);
  (* Deliver one Accept and its ack: majority reached -> commit. *)
  H.deliver_all t;
  (match H.take_replies t with
  | [ r ] ->
    Alcotest.(check bool) "reply ok" true (r.status = Ok);
    Alcotest.(check int) "result" 5 (Counter.decode_result r.payload)
  | _ -> Alcotest.fail "expected exactly one reply");
  for i = 0 to 2 do
    Alcotest.(check int) (Printf.sprintf "replica %d committed" i) 1
      (Replica.commit_point t.replicas.(i))
  done

let test_commit_with_single_ack () =
  (* The leader needs only one follower ack (majority of 3 includes
     itself); the second follower can lag arbitrarily. *)
  let t = H.create () in
  H.elect t 0;
  H.submit t (H.client_request ~seq:1 ~rtype:Write ~payload:(add 1) ());
  (* Deliver only messages between replicas 0 and 1. *)
  let pair01 src dst _ = (src = 0 && dst = 1) || (src = 1 && dst = 0) in
  H.deliver_all ~filter:pair01 t;
  Alcotest.(check int) "leader committed with one ack" 1
    (Replica.commit_point t.replicas.(0));
  Alcotest.(check int) "lagging follower not yet" 0 (Replica.commit_point t.replicas.(2));
  (* Now release the rest: replica 2 catches up. *)
  H.deliver_all t;
  Alcotest.(check int) "follower 2 catches up" 1 (Replica.commit_point t.replicas.(2))

let test_read_confirm_counting () =
  (* X-Paxos: the leader answers a read only after a majority of confirms
     (itself plus one). *)
  let t = H.create () in
  H.elect t 0;
  H.submit t (H.client_request ~seq:1 ~rtype:Read ~payload:get ());
  (* No confirms delivered yet: no reply. *)
  Alcotest.(check int) "no reply before confirms" 0 (List.length (H.take_replies t));
  let confirm src dst msg = src = 1 && dst = 0 && msg_kind msg = "read_confirm" in
  ignore (H.deliver ~filter:confirm t);
  match H.take_replies t with
  | [ r ] -> Alcotest.(check int) "read result" 0 (Counter.decode_result r.payload)
  | l -> Alcotest.fail (Printf.sprintf "expected one reply after majority, got %d" (List.length l))

let test_read_pre_confirm_buffering () =
  (* A follower's confirm can reach the leader before the client's own
     request does; the leader must buffer it. *)
  let t = H.create () in
  H.elect t 0;
  let r = H.client_request ~seq:1 ~rtype:Read ~payload:get () in
  (* Follower 1 sees the read first and confirms. *)
  H.feed t 1 (Receive { src = client_node r.id.client; msg = Client_req r });
  ignore (H.deliver ~filter:(fun src dst msg -> src = 1 && dst = 0 && msg_kind msg = "read_confirm") t);
  Alcotest.(check int) "still no reply" 0 (List.length (H.take_replies t));
  (* Now the leader receives the request: buffered confirm + self = majority. *)
  H.feed t 0 (Receive { src = client_node r.id.client; msg = Client_req r });
  Alcotest.(check int) "buffered confirm counted" 1 (List.length (H.take_replies t))

let test_read_reflects_committed_only () =
  (* A read served while a write is still uncommitted must not observe
     it. *)
  let t = H.create () in
  H.elect t 0;
  H.submit t (H.client_request ~seq:1 ~rtype:Write ~payload:(add 9) ());
  (* Do not deliver the accepts: the write hangs uncommitted. *)
  H.submit t (H.client_request ~client:2 ~seq:1 ~rtype:Read ~payload:get ());
  ignore (H.deliver ~filter:(fun _ _ m -> msg_kind m = "read_confirm") t);
  ignore (H.deliver ~filter:(fun _ _ m -> msg_kind m = "read_confirm") t);
  (match H.take_replies t with
  | [ r ] -> Alcotest.(check int) "uncommitted write invisible" 0 (Counter.decode_result r.payload)
  | _ -> Alcotest.fail "expected the read reply");
  H.deliver_all t;
  ignore (H.take_replies t)

let test_dedup_resend () =
  (* A retransmitted committed write gets its original reply, not a
     second execution. *)
  let t = H.create () in
  H.elect t 0;
  let r = H.client_request ~seq:1 ~rtype:Write ~payload:(add 3) () in
  H.submit t r;
  H.deliver_all t;
  let first = H.take_replies t in
  H.submit t r;
  H.deliver_all t;
  let second = H.take_replies t in
  Alcotest.(check int) "one reply each time" 1 (List.length second);
  Alcotest.(check int) "same result"
    (Counter.decode_result (List.hd first).payload)
    (Counter.decode_result (List.hd second).payload);
  Alcotest.(check int) "executed once" 3 (Replica.state t.replicas.(0));
  Alcotest.(check int) "one instance" 1 (Replica.commit_point t.replicas.(0))

let test_stale_ballot_rejected () =
  (* Promote replica 1 with a higher ballot, then let the deposed leader
     try to commit: followers reject and the old leader steps down. *)
  let t = H.create () in
  H.elect t 0;
  commit_n t ~start:1 ~count:2;
  ignore (H.take_replies t);
  (* Elect replica 1 over replica 0's head: deliver its prepare to 2 only. *)
  H.feed t 1 (Timer Suspicion_tick);
  H.advance t 1000.0;
  H.feed t 1 (Timer Suspicion_tick);
  H.advance t 1000.0;
  H.feed t 1 (Timer Suspicion_tick);
  H.advance t 50.0;
  ignore (H.fire t 1 (function Stability_check _ -> true | _ -> false));
  H.deliver_all ~filter:(fun src dst _ -> (src = 1 && dst = 2) || (src = 2 && dst = 1)) t;
  Alcotest.(check bool) "replica 1 leads" true (Replica.is_leader t.replicas.(1));
  Alcotest.(check bool) "replica 0 still believes it leads" true
    (Replica.is_leader t.replicas.(0));
  (* Old leader proposes: followers' promises are higher; rejects depose it. *)
  H.drop t ~filter:(fun _ _ _ -> true);
  H.feed t 0
    (Receive
       {
         src = client_node (Ids.Client_id.of_int 9);
         msg = Client_req (H.client_request ~client:9 ~seq:1 ~rtype:Write ~payload:(add 1) ());
       });
  H.deliver_all t;
  Alcotest.(check bool) "old leader deposed" false (Replica.is_leader t.replicas.(0));
  Alcotest.(check bool) "new leader intact" true (Replica.is_leader t.replicas.(1))

let test_paper_recovery_example () =
  (* §3.3's narrative: the new leader knows instances 1..k committed while
     a follower has accepted-but-uncommitted entries beyond k; a single
     prepare surfaces them, the new leader re-proposes them under its own
     ballot, and the sequence survives the switch. *)
  let t = H.create () in
  H.elect t 0;
  commit_n t ~start:1 ~count:3;
  ignore (H.take_replies t);
  (* Instance 4: replica 0 proposes but only replica 1 accepts (the
     commit never happens because we drop the acks). *)
  H.submit t (H.client_request ~seq:4 ~rtype:Write ~payload:(add 100) ());
  ignore (H.deliver ~filter:(fun src dst m -> src = 0 && dst = 1 && msg_kind m = "accept") t);
  H.drop t ~filter:(fun _ _ _ -> true);
  Alcotest.(check int) "old leader stuck at 3" 3 (Replica.commit_point t.replicas.(0));
  (* Replica 0 "fails"; replica 2 takes over. Its prepare reaches replica
     1, whose ack carries the accepted instance 4. *)
  H.feed t 2 (Timer Suspicion_tick);
  H.advance t 1000.0;
  H.feed t 2 (Timer Suspicion_tick);
  H.advance t 1000.0;
  H.feed t 2 (Timer Suspicion_tick);
  H.advance t 50.0;
  ignore (H.fire t 2 (function Stability_check _ -> true | _ -> false));
  H.deliver_all ~filter:(fun src dst _ -> src <> 0 && dst <> 0) t;
  Alcotest.(check bool) "replica 2 leads" true (Replica.is_leader t.replicas.(2));
  Alcotest.(check int) "recovered entry re-proposed and committed" 4
    (Replica.commit_point t.replicas.(2));
  Alcotest.(check int) "the +100 write survived the switch" 103
    (Replica.state t.replicas.(2));
  (* The client's duplicate of request 4 is answered from the replicated
     reply cache, not re-executed. *)
  H.feed t 2
    (Receive
       {
         src = client_node (Ids.Client_id.of_int 1);
         msg = Client_req (H.client_request ~seq:4 ~rtype:Write ~payload:(add 100) ());
       });
  H.deliver_all ~filter:(fun src dst _ -> src <> 0 && dst <> 0) t;
  (match List.rev (H.take_replies t) with
  | r :: _ ->
    Alcotest.(check int) "cached reply for the recovered request" 103
      (Counter.decode_result r.payload)
  | [] -> Alcotest.fail "expected the cached reply");
  Alcotest.(check int) "still four instances" 4 (Replica.commit_point t.replicas.(2))

let test_stale_accept_not_committed () =
  (* A bare Commit must not commit a value accepted under an older ballot.
     Replica 2 (as deposed leader) self-accepted its own proposal for
     instance 2; a new leader — whose quorum never saw that value — decides
     a different batch for instance 2, and replica 2's higher promise (from
     a failed re-candidacy) makes it reject the new Accept. The new
     leader's Commit then reaches replica 2, which still holds the stale
     entry: it must catch up, not commit its own dead value. *)
  let t = H.create () in
  H.elect t 2;
  commit_n t ~start:1 ~count:1;
  ignore (H.take_replies t);
  (* Leader 2 proposes instance 2 = Add 50; it self-accepts, nobody else
     sees the Accept. *)
  H.feed t 2
    (Receive
       {
         src = client_node (Ids.Client_id.of_int 9);
         msg = Client_req (H.client_request ~client:9 ~seq:1 ~rtype:Write ~payload:(add 50) ());
       });
  H.drop t ~filter:(fun _ _ _ -> true);
  (* Replica 0 takes over with quorum {0,1}; replica 2 hears nothing. *)
  H.feed t 0 (Timer Suspicion_tick);
  H.advance t 1000.0;
  H.feed t 0 (Timer Suspicion_tick);
  H.advance t 50.0;
  ignore (H.fire t 0 (function Stability_check _ -> true | _ -> false));
  let not2 src dst _ = src <> 2 && dst <> 2 in
  H.deliver_all ~filter:not2 t;
  Alcotest.(check bool) "replica 0 leads" true (Replica.is_leader t.replicas.(0));
  (* The new leader decides a different instance 2 within its quorum. *)
  H.feed t 0
    (Receive
       {
         src = client_node (Ids.Client_id.of_int 8);
         msg = Client_req (H.client_request ~client:8 ~seq:1 ~rtype:Write ~payload:(add 7) ());
       });
  H.deliver_all ~filter:not2 t;
  Alcotest.(check int) "new leader committed instance 2" 2
    (Replica.commit_point t.replicas.(0));
  (* Replica 2 learns it was deposed (a heartbeat carrying the higher
     ballot), then — still isolated — re-candidates: its promise now
     exceeds the new leader's ballot (next round, or same round with a
     higher holder id), so it would reject a (re)sent Accept. *)
  let b0 = Replica.ballot t.replicas.(0) in
  H.feed t 2
    (Receive
       {
         src = 0;
         msg =
           Heartbeat
             {
               round_seen = b0.round;
               commit_point = 1;
               promised = b0;
               sent_at = 0.0;
               lease_anchor = Float.nan;
             };
       });
  H.drop t ~filter:(fun _ _ _ -> true);
  Alcotest.(check bool) "replica 2 deposed" false (Replica.is_leader t.replicas.(2));
  H.feed t 2 (Timer Suspicion_tick);
  H.advance t 1000.0;
  H.feed t 2 (Timer Suspicion_tick);
  H.advance t 50.0;
  ignore (H.fire t 2 (function Stability_check _ -> true | _ -> false));
  H.drop t ~filter:(fun _ _ _ -> true);
  Alcotest.(check bool) "replica 2 promised above the leader" true
    (Ballot.compare (Replica.promised t.replicas.(2)) (Replica.ballot t.replicas.(0)) > 0);
  (* The bare Commit arrives at replica 2, which still holds its own stale
     accept for instance 2. *)
  H.feed t 2
    (Receive
       { src = 0; msg = Commit { ballot = Replica.ballot t.replicas.(0); instance = 2 } });
  Alcotest.(check int) "stale value not committed" 1
    (Replica.commit_point t.replicas.(2));
  Alcotest.(check int) "stale +50 not applied" 1 (Replica.state t.replicas.(2));
  (* The rejection turned into catch-up: let it flow and converge. *)
  H.deliver_all t;
  Alcotest.(check int) "replica 2 caught up" 2 (Replica.commit_point t.replicas.(2));
  Alcotest.(check int) "replica 2 has the chosen value" 8 (Replica.state t.replicas.(2))

let test_snapshot_catchup_for_lagging_follower () =
  (* A follower that missed whole instances fetches a snapshot instead of
     replaying entries. *)
  let t =
    H.create
      ~cfg_tweak:(fun c -> Grid_paxos.Config.make ~base:c ~snapshot_interval:2 ())
      ()
  in
  H.elect t 0;
  (* Partition replica 2 away: it never sees these four instances. *)
  let not2 src dst _ = src <> 2 && dst <> 2 in
  for seq = 1 to 4 do
    let r = H.client_request ~seq ~rtype:Write ~payload:(add 1) () in
    H.feed t 0 (Receive { src = client_node r.id.client; msg = Client_req r });
    H.feed t 1 (Receive { src = client_node r.id.client; msg = Client_req r });
    H.deliver_all ~filter:not2 t
  done;
  H.drop t ~filter:(fun src dst _ -> src = 2 || dst = 2);
  ignore (H.take_replies t);
  Alcotest.(check int) "follower 2 behind" 0 (Replica.commit_point t.replicas.(2));
  (* Heal: the next write's commit exposes the gap; follower 2 requests a
     catch-up snapshot. *)
  H.submit t (H.client_request ~seq:5 ~rtype:Write ~payload:(add 1) ());
  H.deliver_all t;
  Alcotest.(check int) "follower 2 caught up via snapshot" 5
    (Replica.commit_point t.replicas.(2));
  Alcotest.(check int) "state matches" (Replica.state t.replicas.(0))
    (Replica.state t.replicas.(2))

let test_heartbeat_commit_point_catchup () =
  (* A follower that missed only the final Commit learns it from the
     leader's heartbeat commit point. *)
  let t = H.create () in
  H.elect t 0;
  H.submit t (H.client_request ~seq:1 ~rtype:Write ~payload:(add 1) ());
  (* Deliver accepts + acks but drop the commits. *)
  H.deliver_all ~filter:(fun _ _ m -> msg_kind m = "accept" || msg_kind m = "accept_ack") t;
  H.drop t ~filter:(fun _ _ m -> msg_kind m = "commit");
  Alcotest.(check int) "followers behind" 0 (Replica.commit_point t.replicas.(1));
  (* A heartbeat round triggers Catchup_req/Catchup. *)
  ignore (H.fire t 0 (function Hb_tick -> true | _ -> false));
  H.deliver_all t;
  Alcotest.(check int) "follower 1 caught up" 1 (Replica.commit_point t.replicas.(1));
  Alcotest.(check int) "follower 2 caught up" 1 (Replica.commit_point t.replicas.(2))

let test_accept_retry_is_idempotent () =
  (* Retransmitted Accepts (paper: "it retransmits those messages") do
     not duplicate anything. *)
  let t = H.create () in
  H.elect t 0;
  H.submit t (H.client_request ~seq:1 ~rtype:Write ~payload:(add 7) ());
  (* Fire the retry before any delivery: two copies of each Accept. *)
  ignore (H.fire t 0 (function Accept_retry _ -> true | _ -> false));
  H.deliver_all t;
  ignore (H.take_replies t);
  Alcotest.(check int) "one instance" 1 (Replica.commit_point t.replicas.(1));
  Alcotest.(check int) "applied once" 7 (Replica.state t.replicas.(1))

let test_batch_commits_as_one_instance () =
  (* Multiple queued writes decide as a single instance whose replies all
     go out at commit. *)
  let t = H.create () in
  H.elect t 0;
  (* Submit three writes from distinct clients without delivering. *)
  for c = 1 to 3 do
    H.submit t (H.client_request ~client:c ~seq:1 ~rtype:Write ~payload:(add c) ())
  done;
  H.deliver_all t;
  Alcotest.(check int) "three replies" 3 (List.length (H.take_replies t));
  Alcotest.(check int) "state is the batch sum" 6 (Replica.state t.replicas.(0));
  (* The first write opened instance 1 immediately; the two that arrived
     while it was in flight batched into instance 2. *)
  Alcotest.(check int) "at most two instances" 2 (Replica.commit_point t.replicas.(0))

let test_original_is_uncoordinated () =
  let t = H.create () in
  H.elect t 0;
  H.submit t (H.client_request ~seq:1 ~rtype:Original ~payload:(add 4) ());
  (* Reply emitted with no accept round at all. *)
  (match H.take_replies t with
  | [ r ] -> Alcotest.(check int) "original result" 4 (Counter.decode_result r.payload)
  | _ -> Alcotest.fail "expected immediate reply");
  Alcotest.(check bool) "no accept messages pending" true
    (not (List.mem "accept" (H.pending_kinds t)));
  Alcotest.(check int) "no instance consumed" 0 (Replica.commit_point t.replicas.(0))

let test_follower_ignores_writes () =
  let t = H.create () in
  H.elect t 0;
  let r = H.client_request ~seq:1 ~rtype:Write ~payload:(add 1) () in
  H.feed t 1 (Receive { src = client_node r.id.client; msg = Client_req r });
  Alcotest.(check int) "follower stays silent" 0 (List.length (H.take_replies t));
  Alcotest.(check bool) "no accepts from a follower" true
    (not (List.mem "accept" (H.pending_kinds t)))

(* ------------------------------------------------------------------ *)
(* Read-path hardening regressions                                     *)

(* Depose the current leader and promote replica [i], letting every
   message flow (unlike H.elect this works against a live incumbent). *)
let takeover t i =
  H.feed t i (Timer Suspicion_tick);
  H.advance t 1000.0;
  H.feed t i (Timer Suspicion_tick);
  H.advance t 1000.0;
  H.feed t i (Timer Suspicion_tick);
  H.advance t 50.0;
  ignore (H.fire t i (function Stability_check _ -> true | _ -> false));
  H.deliver_all t;
  Alcotest.(check bool) (Printf.sprintf "replica %d takes over" i) true
    (Replica.is_leader t.H.replicas.(i))

let test_stale_pre_confirm_purged () =
  (* Regression: a confirm stashed under an earlier leadership of this
     replica must not count toward a read dispatched after the replica
     loses and re-wins the leadership — the old confirm endorsed a
     promise that was usurped in between. *)
  let t = H.create () in
  H.elect t 0;
  let r = H.client_request ~seq:1 ~rtype:Read ~payload:get () in
  (* Follower 1 sees the read first; its confirm reaches leader 0 before
     the client's own request does, so leader 0 stashes it. *)
  H.feed t 1 (Receive { src = client_node r.id.client; msg = Client_req r });
  ignore
    (H.deliver
       ~filter:(fun src dst m -> src = 1 && dst = 0 && msg_kind m = "read_confirm")
       t);
  (* Leadership churns away and back: the stash is now stale. *)
  takeover t 1;
  takeover t 0;
  ignore (H.take_replies t);
  H.feed t 0 (Receive { src = client_node r.id.client; msg = Client_req r });
  Alcotest.(check int) "stale stashed confirm not counted" 0
    (List.length (H.take_replies t));
  (* A confirm under the current ballot still completes the read. *)
  H.feed t 2 (Receive { src = client_node r.id.client; msg = Client_req r });
  ignore
    (H.deliver
       ~filter:(fun src dst m -> src = 2 && dst = 0 && msg_kind m = "read_confirm")
       t);
  match H.take_replies t with
  | [ rep ] -> Alcotest.(check bool) "fresh confirm completes the read" true (rep.status = Ok)
  | l -> Alcotest.fail (Printf.sprintf "expected one reply, got %d" (List.length l))

let test_confirm_requires_current_ballot () =
  (* Regression: a Read_confirm tagged with a defunct ballot must not
     count toward a pending read at the current leader. *)
  let t = H.create () in
  H.elect t 0;
  let r = H.client_request ~seq:1 ~rtype:Read ~payload:get () in
  H.feed t 0 (Receive { src = client_node r.id.client; msg = Client_req r });
  Alcotest.(check int) "no reply on the leader's own confirm" 0
    (List.length (H.take_replies t));
  H.feed t 0
    (Receive
       {
         src = 1;
         msg = Read_confirm { ballot = Ballot.zero; req = r.id; lease_anchor = Float.nan };
       });
  Alcotest.(check int) "stale-ballot confirm ignored" 0 (List.length (H.take_replies t));
  H.feed t 0
    (Receive
       {
         src = 1;
         msg =
           Read_confirm
             {
               ballot = Replica.ballot t.replicas.(0);
               req = r.id;
               lease_anchor = Float.nan;
             };
       });
  Alcotest.(check int) "current-ballot confirm completes" 1
    (List.length (H.take_replies t))

let test_leadership_loss_returns_retry () =
  (* Regression: reads pending at a deposed leader must not be dropped
     silently — the client gets a typed Retry so it can fail over
     immediately. *)
  let t = H.create () in
  H.elect t 0;
  let r = H.client_request ~seq:1 ~rtype:Read ~payload:get () in
  H.feed t 0 (Receive { src = client_node r.id.client; msg = Client_req r });
  Alcotest.(check int) "read pending on confirms" 0 (List.length (H.take_replies t));
  let b = Replica.ballot t.replicas.(0) in
  H.feed t 0
    (Receive
       {
         src = 1;
         msg =
           Prepare
             { ballot = Ballot.make ~round:(b.round + 1) ~holder:1; commit_point = 0 };
       });
  match H.take_replies t with
  | [ rep ] ->
    Alcotest.(check bool) "typed retry status" true (rep.status = Retry);
    Alcotest.(check bool) "for the pending read" true (rep.req = r.id);
    Alcotest.(check string) "empty payload" "" rep.payload
  | l ->
    Alcotest.fail
      (Printf.sprintf "expected one Retry reply on deposition, got %d" (List.length l))

(* ------------------------------------------------------------------ *)
(* Leader leases                                                       *)

let with_lease ?(lease_ms = 100.0) () =
  H.create ~cfg_tweak:(fun c -> Grid_paxos.Config.make ~base:c ~lease_ms ()) ()

(* One full heartbeat exchange: the leader's heartbeat grants at the
   followers, and their echoed anchors record the grants back at the
   leader. *)
let establish_lease t i =
  ignore (H.fire t i (function Hb_tick -> true | _ -> false));
  H.deliver_all t;
  Array.iteri
    (fun j _ ->
      if j <> i then ignore (H.fire t j (function Hb_tick -> true | _ -> false)))
    t.H.replicas;
  H.deliver_all t;
  Alcotest.(check bool) "majority lease held" true
    (Replica.holds_lease t.H.replicas.(i) ~now:t.H.now)

let test_leased_read_zero_messages () =
  (* The tentpole property: while the leader holds a majority lease, a
     read completes locally — no confirm round, zero protocol messages. *)
  let t = with_lease () in
  H.elect t 0;
  commit_n t ~start:1 ~count:1;
  ignore (H.take_replies t);
  establish_lease t 0;
  let before = List.length t.pending in
  let r = H.client_request ~client:2 ~seq:1 ~rtype:Read ~payload:get () in
  (* Only the leader sees the read: nobody else can confirm it. *)
  H.feed t 0 (Receive { src = client_node r.id.client; msg = Client_req r });
  (match H.take_replies t with
  | [ rep ] ->
    Alcotest.(check bool) "immediate local reply" true (rep.status = Ok);
    Alcotest.(check int) "reads committed state" 1 (Counter.decode_result rep.payload)
  | l -> Alcotest.fail (Printf.sprintf "expected one local reply, got %d" (List.length l)));
  Alcotest.(check int) "zero protocol messages for the leased read" before
    (List.length t.pending)

let test_lease_lapse_falls_back () =
  (* When the grants expire the fast path must demote to the confirm
     protocol, not serve potentially stale state. *)
  let t = with_lease () in
  H.elect t 0;
  establish_lease t 0;
  H.advance t 200.0;
  Alcotest.(check bool) "lease lapsed" false
    (Replica.holds_lease t.replicas.(0) ~now:t.now);
  let r = H.client_request ~seq:1 ~rtype:Read ~payload:get () in
  H.feed t 0 (Receive { src = client_node r.id.client; msg = Client_req r });
  Alcotest.(check int) "no local reply without the lease" 0
    (List.length (H.take_replies t));
  (* The client's broadcast reaches the followers; their confirms
     complete the read the X-Paxos way. *)
  H.feed t 1 (Receive { src = client_node r.id.client; msg = Client_req r });
  H.feed t 2 (Receive { src = client_node r.id.client; msg = Client_req r });
  H.deliver_all t;
  match H.take_replies t with
  | [ rep ] -> Alcotest.(check bool) "confirm path replies" true (rep.status = Ok)
  | l -> Alcotest.fail (Printf.sprintf "expected one reply, got %d" (List.length l))

let test_lease_blocks_prepare () =
  (* A follower with an unexpired grant refuses promises to any other
     candidate regardless of ballot height — the refusal quorum is what
     makes local reads safe. *)
  let t = with_lease () in
  H.elect t 0;
  establish_lease t 0;
  let b1 = Replica.promised t.replicas.(1) in
  let usurper =
    Prepare { ballot = Ballot.make ~round:(b1.round + 5) ~holder:2; commit_point = 0 }
  in
  H.feed t 1 (Receive { src = 2; msg = usurper });
  Alcotest.(check bool) "reject sent while leased" true
    (List.mem "reject" (H.pending_kinds t));
  Alcotest.(check bool) "no prepare_ack while leased" true
    (not (List.mem "prepare_ack" (H.pending_kinds t)));
  Alcotest.(check bool) "promise unchanged" true
    (Ballot.equal (Replica.promised t.replicas.(1)) b1);
  (* The same prepare succeeds once the grant has expired. *)
  H.drop t ~filter:(fun _ _ _ -> true);
  H.advance t 200.0;
  H.feed t 1 (Receive { src = 2; msg = usurper });
  Alcotest.(check bool) "acked after expiry" true
    (List.mem "prepare_ack" (H.pending_kinds t))

let test_lease_gates_candidacy () =
  (* A granted follower does not start its own election while the grant
     is live; candidacy resumes after expiry (liveness shifts by at most
     one lease). *)
  let t = with_lease ~lease_ms:5000.0 () in
  H.elect t 0;
  ignore (H.fire t 0 (function Hb_tick -> true | _ -> false));
  H.deliver_all t;
  let run_election i =
    H.feed t i (Timer Suspicion_tick);
    H.advance t 1000.0;
    H.feed t i (Timer Suspicion_tick);
    H.advance t 50.0;
    ignore (H.fire t i (function Stability_check _ -> true | _ -> false))
  in
  run_election 1;
  Alcotest.(check bool) "no prepare while granted" true
    (not (List.mem "prepare" (H.pending_kinds t)));
  Alcotest.(check bool) "still a follower" false (Replica.is_leader t.replicas.(1));
  H.advance t 5000.0;
  run_election 1;
  H.deliver_all t;
  Alcotest.(check bool) "candidacy unblocked after expiry" true
    (Replica.is_leader t.replicas.(1))

let test_restart_lease_blackout () =
  (* A recovered follower forgot its grant; it must sit out one full
     lease, refusing every candidate, before promising again. *)
  let t = with_lease () in
  H.advance t 10.0;
  ignore (Replica.restart t.replicas.(1) ~now:t.now : action list);
  Alcotest.(check (option int)) "blackout grant holder" (Some (-1))
    (Replica.lease_granted_to t.replicas.(1) ~now:t.now);
  let prep = Prepare { ballot = Ballot.make ~round:3 ~holder:0; commit_point = 0 } in
  H.feed t 1 (Receive { src = 0; msg = prep });
  Alcotest.(check bool) "prepare refused during blackout" true
    (List.mem "reject" (H.pending_kinds t));
  Alcotest.(check bool) "no ack during blackout" true
    (not (List.mem "prepare_ack" (H.pending_kinds t)));
  H.drop t ~filter:(fun _ _ _ -> true);
  H.advance t 150.0;
  H.feed t 1 (Receive { src = 0; msg = prep });
  Alcotest.(check bool) "promises again after the blackout" true
    (List.mem "prepare_ack" (H.pending_kinds t))

let suite =
  [
    ( "replica.engine",
      [
        Alcotest.test_case "write message pattern (§3.3)" `Quick test_write_message_pattern;
        Alcotest.test_case "commit with a single ack" `Quick test_commit_with_single_ack;
        Alcotest.test_case "X-Paxos confirm counting (§3.4)" `Quick
          test_read_confirm_counting;
        Alcotest.test_case "pre-confirm buffering" `Quick test_read_pre_confirm_buffering;
        Alcotest.test_case "reads see committed state only" `Quick
          test_read_reflects_committed_only;
        Alcotest.test_case "dedup resend" `Quick test_dedup_resend;
        Alcotest.test_case "stale ballot rejected" `Quick test_stale_ballot_rejected;
        Alcotest.test_case "stale accept not committed" `Quick
          test_stale_accept_not_committed;
        Alcotest.test_case "paper's recovery example (§3.3)" `Quick
          test_paper_recovery_example;
        Alcotest.test_case "snapshot catch-up" `Quick
          test_snapshot_catchup_for_lagging_follower;
        Alcotest.test_case "heartbeat commit-point catch-up" `Quick
          test_heartbeat_commit_point_catchup;
        Alcotest.test_case "accept retry idempotent" `Quick test_accept_retry_is_idempotent;
        Alcotest.test_case "write batching (one instance)" `Quick
          test_batch_commits_as_one_instance;
        Alcotest.test_case "original requests uncoordinated" `Quick
          test_original_is_uncoordinated;
        Alcotest.test_case "followers ignore writes" `Quick test_follower_ignores_writes;
        Alcotest.test_case "stale pre-confirm purged on churn" `Quick
          test_stale_pre_confirm_purged;
        Alcotest.test_case "confirms require the current ballot" `Quick
          test_confirm_requires_current_ballot;
        Alcotest.test_case "leadership loss returns Retry" `Quick
          test_leadership_loss_returns_retry;
      ] );
    ( "replica.lease",
      [
        Alcotest.test_case "leased read is zero-message" `Quick
          test_leased_read_zero_messages;
        Alcotest.test_case "lapsed lease falls back to confirms" `Quick
          test_lease_lapse_falls_back;
        Alcotest.test_case "unexpired grant blocks Prepare" `Quick
          test_lease_blocks_prepare;
        Alcotest.test_case "grant gates own candidacy" `Quick test_lease_gates_candidacy;
        Alcotest.test_case "restart enters lease blackout" `Quick
          test_restart_lease_blackout;
      ] );
  ]
