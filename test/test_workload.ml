(* Tests for the workload generators and the open-loop driver. *)

module Runtime = Grid_runtime.Runtime
module Workload = Grid_runtime.Workload
module Scenario = Grid_runtime.Scenario
module Config = Grid_paxos.Config
module Rng = Grid_util.Rng
module Kv = Grid_services.Kv_store
module Noop = Grid_services.Noop

let drain gen =
  let rec go acc = match gen () with None -> List.rev acc | Some x -> go (x :: acc) in
  go []

let test_mix_counts_and_fraction () =
  let rng = Rng.of_int 1 in
  let items =
    drain
      (Workload.mix ~rng ~read_fraction:0.7 ~count:2000 ~read_op:Noop.Noop_read
         ~write_op:Noop.Noop_write ~client:0)
  in
  Alcotest.(check int) "count" 2000 (List.length items);
  let reads =
    List.length (List.filter (fun it -> it = Runtime.Do Noop.Noop_read) items)
  in
  Alcotest.(check bool)
    (Printf.sprintf "read fraction ~0.7 (%d/2000)" reads)
    true
    (reads > 1300 && reads < 1500);
  List.iter
    (fun it ->
      match it with
      | Runtime.Do Noop.Noop_read | Runtime.Do Noop.Noop_write -> ()
      | _ -> Alcotest.fail "unexpected item")
    items

let test_mix_extremes () =
  let rng = Rng.of_int 2 in
  let all_reads =
    drain (Workload.mix ~rng ~read_fraction:1.0 ~count:50 ~read_op:Noop.Noop_read
             ~write_op:Noop.Noop_write ~client:0)
  in
  Alcotest.(check bool) "all reads" true
    (List.for_all (fun it -> it = Runtime.Do Noop.Noop_read) all_reads);
  let all_writes =
    drain (Workload.mix ~rng ~read_fraction:0.0 ~count:50 ~read_op:Noop.Noop_read
             ~write_op:Noop.Noop_write ~client:0)
  in
  Alcotest.(check bool) "all writes" true
    (List.for_all (fun it -> it = Runtime.Do Noop.Noop_write) all_writes)

let test_kv_zipf_skew () =
  let rng = Rng.of_int 3 in
  let items =
    drain (Workload.kv_zipf ~rng ~read_fraction:0.0 ~keys:20 ~s:1.2 ~count:3000 ~client:1)
  in
  Alcotest.(check int) "count" 3000 (List.length items);
  (* Rank 1 should dominate. *)
  let freq = Hashtbl.create 20 in
  List.iter
    (fun it ->
      match it with
      | Runtime.Do (Kv.Put { key; _ }) ->
        Hashtbl.replace freq key (1 + Option.value ~default:0 (Hashtbl.find_opt freq key))
      | _ -> Alcotest.fail "expected Put")
    items;
  let count k = Option.value ~default:0 (Hashtbl.find_opt freq k) in
  Alcotest.(check bool) "key-1 most frequent" true
    (count "key-1" > count "key-2" && count "key-2" > count "key-10")

let test_transactions_script () =
  let items =
    drain (Workload.transactions ~ops_per_txn:3 ~txns:4 ~op:Noop.Noop_write ~client:0)
  in
  Alcotest.(check int) "4 txns x 4 items" 16 (List.length items);
  (* Check structure: 3 ops then one commit carrying the op count, with
     fresh txn ids. *)
  let rec check_txns expected_tid = function
    | [] -> ()
    | Runtime.In_txn (a, _) :: Runtime.In_txn (b, _) :: Runtime.In_txn (c, _)
      :: Runtime.Commit_txn { tid = d; ops } :: rest
      when a = expected_tid && b = expected_tid && c = expected_tid && d = expected_tid ->
      Alcotest.(check int) "commit op count" 3 ops;
      check_txns (expected_tid + 1) rest
    | _ -> Alcotest.fail "malformed transaction script"
  in
  check_txns 1 items

(* ------------------------------------------------------------------ *)
(* Open-loop driver *)

module OL = Workload.Make (Noop)

let test_open_loop_light_load () =
  let t =
    OL.RT.create ~cfg:(Config.default ~n:3) ~scenario:Scenario.sysnet ~seed:5 ()
  in
  ignore (OL.RT.await_leader t);
  let r =
    OL.run t ~seed:7 ~rps:2000.0 ~duration_ms:500.0 ~item:(Runtime.Do Noop.Noop_write)
  in
  (* ~1000 arrivals expected; all should complete with latencies near the
     unloaded RRT. *)
  Alcotest.(check bool)
    (Printf.sprintf "completions ~1000 (%d)" r.completed)
    true
    (r.completed > 800 && r.completed < 1200);
  Alcotest.(check int) "no drops" 0 r.dropped;
  Alcotest.(check int) "no stragglers" 0 r.still_inflight;
  Alcotest.(check int) "arrivals = completions" r.arrivals r.completed;
  let mean =
    Array.fold_left ( +. ) 0.0 r.latencies_ms /. Float.of_int (Array.length r.latencies_ms)
  in
  Alcotest.(check bool)
    (Printf.sprintf "light-load latency near RRT (%.3f ms)" mean)
    true (mean < 1.0)

let test_open_loop_latency_grows_with_load () =
  let mean_at rps =
    let t =
      OL.RT.create ~cfg:(Config.default ~n:3) ~scenario:Scenario.sysnet ~seed:6 ()
    in
    ignore (OL.RT.await_leader t);
    let r =
      OL.run t ~seed:8 ~rps ~duration_ms:400.0 ~item:(Runtime.Do Noop.Noop_write)
    in
    Array.fold_left ( +. ) 0.0 r.latencies_ms
    /. Float.of_int (Stdlib.max 1 (Array.length r.latencies_ms))
  in
  let light = mean_at 1000.0 in
  let heavy = mean_at 25000.0 in
  Alcotest.(check bool)
    (Printf.sprintf "latency grows with offered load (%.3f -> %.3f ms)" light heavy)
    true (heavy > light)

let suite =
  [
    ( "workload.generators",
      [
        Alcotest.test_case "mix counts and fraction" `Quick test_mix_counts_and_fraction;
        Alcotest.test_case "mix extremes" `Quick test_mix_extremes;
        Alcotest.test_case "kv zipf skew" `Quick test_kv_zipf_skew;
        Alcotest.test_case "transaction script" `Quick test_transactions_script;
      ] );
    ( "workload.open_loop",
      [
        Alcotest.test_case "light load completes" `Quick test_open_loop_light_load;
        Alcotest.test_case "latency grows with load" `Quick
          test_open_loop_latency_grows_with_load;
      ] );
  ]
