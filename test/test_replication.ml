(* End-to-end replication tests on the simulator: agreement across
   replicas, read/write semantics, deduplication, state-shipping modes,
   nondeterministic services, and the divergence of the classic
   request-shipping baseline. *)

module Config = Grid_paxos.Config
module Scenario = Grid_runtime.Scenario
module Counter = Grid_services.Counter
module Broker = Grid_services.Resource_broker
module Sched = Grid_services.Grid_scheduler
module Noop = Grid_services.Noop
open Grid_paxos.Types

module RT_counter = Grid_runtime.Runtime.Make (Counter)

(* Typed-submit shim: these scripts sequence requests manually, so a
   [`Busy] here is a test bug. *)
let submit_c t c rtype ~payload =
  match RT_counter.submit t c rtype ~payload with
  | `Submitted -> ()
  | `Busy -> Alcotest.fail "submit: client busy"

module RT_broker = Grid_runtime.Runtime.Make (Broker)
module RT_sched = Grid_runtime.Runtime.Make (Sched)
module RT_noop = Grid_runtime.Runtime.Make (Noop)

let base_cfg ?(history = true) () =
  Config.make ~n:3 ~record_history:history ()

let counter_gen ops ~client:_ =
  let remaining = ref ops in
  fun () ->
    match !remaining with
    | [] -> None
    | op :: rest ->
      remaining := rest;
      let rtype = match Counter.classify op with `Read -> Read | `Write -> Write in
      Some (rtype, Counter.encode_op op)

(* ------------------------------------------------------------------ *)

let test_leader_election_is_r0 () =
  let t = RT_counter.create ~cfg:(base_cfg ()) ~scenario:(Scenario.uniform ()) () in
  Alcotest.(check (option int)) "replica 0 leads initially" (Some 0)
    (RT_counter.await_leader t)

let test_counter_agreement () =
  let t = RT_counter.create ~cfg:(base_cfg ()) ~scenario:(Scenario.uniform ()) () in
  let results =
    RT_counter.run_closed_loop t ~clients:3 ~requests_per_client:20
      ~gen:(counter_gen (List.init 20 (fun i -> Counter.Add (i + 1))))
  in
  Alcotest.(check int) "all completed" 60 results.total_completed;
  RT_counter.run_until t (RT_counter.now t +. 500.0);
  let expected = 3 * (20 * 21 / 2) in
  for i = 0 to 2 do
    Alcotest.(check int)
      (Printf.sprintf "replica %d final state" i)
      expected
      (RT_counter.R.state (RT_counter.replica t i))
  done;
  let histories =
    Array.init 3 (fun i -> RT_counter.R.committed_updates (RT_counter.replica t i))
  in
  Alcotest.(check int) "no violations" 0
    (List.length (Grid_check.Agreement.check histories))

let test_reads_reflect_writes () =
  let t = RT_counter.create ~cfg:(base_cfg ()) ~scenario:(Scenario.uniform ()) () in
  let observed = ref [] in
  let results =
    RT_counter.run_closed_loop t ~clients:1 ~requests_per_client:10
      ~gen:(fun ~client:_ ->
        let i = ref 0 in
        fun () ->
          incr i;
          if !i > 10 then None
          else if !i mod 2 = 1 then Some (Write, Counter.encode_op (Counter.Add 1))
          else Some (Read, Counter.encode_op Counter.Get))
  in
  ignore results;
  (* Re-run capturing read results: a read after k writes must return k. *)
  let t2 = RT_counter.create ~cfg:(base_cfg ()) ~scenario:(Scenario.uniform ()) () in
  ignore (RT_counter.await_leader t2);
  let client = ref None in
  let step = ref 0 in
  let c =
    RT_counter.add_client t2 ~id:0
      ~on_reply:(fun reply ->
        if !step mod 2 = 0 then
          observed := Counter.decode_result reply.payload :: !observed;
        incr step;
        if !step < 10 then
          let cl = Option.get !client in
          if !step mod 2 = 0 then
            submit_c t2 cl Read ~payload:(Counter.encode_op Counter.Get)
          else submit_c t2 cl Write ~payload:(Counter.encode_op (Counter.Add 1)))
      ()
  in
  client := Some c;
  (* step 0: read (expect 0); step 1: write; step 2: read (expect 1)... *)
  submit_c t2 c Read ~payload:(Counter.encode_op Counter.Get);
  RT_counter.run_until t2 5_000.0;
  Alcotest.(check (list int)) "monotone read results" [ 0; 1; 2; 3; 4 ]
    (List.rev !observed)

let test_duplicate_suppression () =
  (* Lossy network: client retransmissions must not double-execute. *)
  let cfg =
    Config.make ~base:(base_cfg ()) ~client_retry_ms:50.0 ~accept_retry_ms:20.0 ()
  in
  let t = RT_counter.create ~cfg ~scenario:(Scenario.uniform ()) () in
  ignore (RT_counter.await_leader t);
  Grid_sim.Network.set_drop_rate (RT_counter.network t) 0.15;
  let results =
    RT_counter.run_closed_loop t ~clients:2 ~requests_per_client:15
      ~gen:(counter_gen (List.init 15 (fun _ -> Counter.Add 1)))
  in
  Alcotest.(check int) "all eventually answered" 30 results.total_completed;
  Grid_sim.Network.set_drop_rate (RT_counter.network t) 0.0;
  RT_counter.run_until t (RT_counter.now t +. 2_000.0);
  for i = 0 to 2 do
    Alcotest.(check int)
      (Printf.sprintf "replica %d counted each write once" i)
      30
      (RT_counter.R.state (RT_counter.replica t i))
  done

let run_ship_mode ship =
  let cfg = Config.make ~base:(base_cfg ()) ~ship () in
  let t = RT_counter.create ~cfg ~scenario:(Scenario.uniform ()) () in
  let _ =
    RT_counter.run_closed_loop t ~clients:2 ~requests_per_client:10
      ~gen:(counter_gen (List.init 10 (fun i -> Counter.Add i)))
  in
  RT_counter.run_until t (RT_counter.now t +. 500.0);
  Array.init 3 (fun i -> RT_counter.R.state (RT_counter.replica t i))

let test_ship_modes_agree () =
  let expected = [| 90; 90; 90 |] in
  Alcotest.(check (array int)) "full" expected (run_ship_mode `Full);
  Alcotest.(check (array int)) "delta" expected (run_ship_mode `Delta);
  Alcotest.(check (array int)) "witness" expected (run_ship_mode `Witness)

(* ------------------------------------------------------------------ *)
(* Nondeterministic services stay consistent under state shipping and
   diverge under classic request shipping. *)

let broker_ops =
  List.concat
    [
      List.init 6 (fun k -> Broker.Register { rid = k; site = 0; capacity = 100 });
      List.init 30 (fun _ -> Broker.Select { site = 0; units = 1; strategy = Broker.Uniform });
    ]

let broker_gen ~client:_ =
  let remaining = ref broker_ops in
  fun () ->
    match !remaining with
    | [] -> None
    | op :: rest ->
      remaining := rest;
      Some (Write, Broker.encode_op op)

let broker_states coordination =
  let cfg = Config.make ~base:(base_cfg ()) ~coordination () in
  let t = RT_broker.create ~cfg ~scenario:(Scenario.uniform ()) () in
  let _ =
    RT_broker.run_closed_loop t ~clients:1 ~requests_per_client:(List.length broker_ops)
      ~gen:broker_gen
  in
  RT_broker.run_until t (RT_broker.now t +. 500.0);
  Array.init 3 (fun i -> Broker.encode_state (RT_broker.R.state (RT_broker.replica t i)))

let test_broker_state_shipping_consistent () =
  let states = broker_states `State_shipping in
  Alcotest.(check string) "r1 = r0" states.(0) states.(1);
  Alcotest.(check string) "r2 = r0" states.(0) states.(2)

let test_broker_request_shipping_diverges () =
  (* The §3.3 motivation: classic Multi-Paxos re-executes the randomized
     selection at every replica with its own RNG, so replicas diverge. *)
  let states = broker_states `Request_shipping in
  Alcotest.(check bool) "replicas diverged" true
    (states.(0) <> states.(1) || states.(0) <> states.(2))

let test_scheduler_replicated_consistent () =
  let ops =
    List.concat
      [
        List.init 3 (fun m -> Sched.Add_machine m);
        List.concat
          (List.init 10 (fun j ->
               [ Sched.Submit { job = j; priority = j mod 3 }; Sched.Examine ]));
      ]
  in
  let gen ~client:_ =
    let remaining = ref ops in
    fun () ->
      match !remaining with
      | [] -> None
      | op :: rest ->
        remaining := rest;
        Some (Write, Sched.encode_op op)
  in
  let t = RT_sched.create ~cfg:(base_cfg ()) ~scenario:(Scenario.uniform ()) () in
  let _ = RT_sched.run_closed_loop t ~clients:1 ~requests_per_client:(List.length ops) ~gen in
  RT_sched.run_until t (RT_sched.now t +. 500.0);
  let st i = RT_sched.R.state (RT_sched.replica t i) in
  let enc i = Sched.encode_state (st i) in
  Alcotest.(check string) "r1 = r0" (enc 0) (enc 1);
  Alcotest.(check string) "r2 = r0" (enc 0) (enc 2);
  (* Every submitted job got scheduled, and replicas agree on the
     assignment map — the property NILE needed. *)
  Alcotest.(check int) "all jobs assigned" 10 (List.length (Sched.assignments (st 0)));
  Alcotest.(check (list int)) "no pending jobs" [] (Sched.pending_jobs (st 0))

(* ------------------------------------------------------------------ *)
(* Latency ordering (the headline §4.1 relationship). *)

let noop_rrt rtype =
  let t =
    RT_noop.create ~cfg:(Config.default ~n:3) ~scenario:Scenario.sysnet ~seed:7 ()
  in
  let op = match rtype with Read -> Noop.Noop_read | _ -> Noop.Noop_write in
  let results =
    RT_noop.run_closed_loop t ~clients:1 ~requests_per_client:50 ~gen:(fun ~client:_ () ->
        Some (rtype, Noop.encode_op op))
  in
  let lats = RT_noop.latencies results in
  Array.fold_left ( +. ) 0.0 lats /. Float.of_int (Array.length lats)

let test_latency_ordering () =
  let original = noop_rrt Original in
  let read = noop_rrt Read in
  let write = noop_rrt Write in
  Alcotest.(check bool)
    (Printf.sprintf "original (%.3f) < read (%.3f)" original read)
    true (original < read);
  Alcotest.(check bool)
    (Printf.sprintf "read (%.3f) < write (%.3f)" read write)
    true (read < write);
  (* X-Paxos saves roughly one replica round-trip: the paper reports a 22%
     reduction; accept anything in the 10–35% band. *)
  let reduction = (write -. read) /. write in
  Alcotest.(check bool)
    (Printf.sprintf "X-Paxos reduction %.1f%%" (reduction *. 100.0))
    true
    (reduction > 0.10 && reduction < 0.35)

let test_execution_cost_parallelism () =
  (* With E >> m, reads cost ~2M + E (execution hides the confirms) while
     writes cost ~2M + E + 2m: the max(E, m) term of §3.4. *)
  let run rtype =
    let sc = Scenario.uniform ~latency:(Grid_sim.Latency.Constant 1.0) () in
    let cfg = Config.make ~n:3 ~execution_cost_ms:5.0 () in
    let t = RT_noop.create ~cfg ~scenario:sc () in
    let op = match rtype with Read -> Noop.Noop_read | _ -> Noop.Noop_write in
    let results =
      RT_noop.run_closed_loop t ~clients:1 ~requests_per_client:10 ~gen:(fun ~client:_ () ->
          Some (rtype, Noop.encode_op op))
    in
    let lats = RT_noop.latencies results in
    Array.fold_left ( +. ) 0.0 lats /. Float.of_int (Array.length lats)
  in
  let read = run Read and write = run Write in
  Alcotest.(check (float 0.2)) "read = 2M + E" 7.0 read;
  Alcotest.(check (float 0.2)) "write = 2M + E + 2m" 9.0 write

let test_five_replicas () =
  let cfg = Config.make ~n:5 ~record_history:true () in
  let t = RT_counter.create ~cfg ~scenario:(Scenario.uniform ~n:5 ()) () in
  let results =
    RT_counter.run_closed_loop t ~clients:2 ~requests_per_client:10
      ~gen:(counter_gen (List.init 10 (fun _ -> Counter.Add 1)))
  in
  Alcotest.(check int) "completed" 20 results.total_completed;
  RT_counter.run_until t (RT_counter.now t +. 500.0);
  for i = 0 to 4 do
    Alcotest.(check int) (Printf.sprintf "replica %d" i) 20
      (RT_counter.R.state (RT_counter.replica t i))
  done

let test_single_replica () =
  (* n=1: quorum of one; everything commits locally. *)
  let cfg = Config.default ~n:1 in
  let t = RT_counter.create ~cfg ~scenario:(Scenario.uniform ~n:1 ()) () in
  let results =
    RT_counter.run_closed_loop t ~clients:1 ~requests_per_client:5
      ~gen:(counter_gen (List.init 5 (fun _ -> Counter.Add 2)))
  in
  Alcotest.(check int) "completed" 5 results.total_completed;
  Alcotest.(check int) "state" 10 (RT_counter.R.state (RT_counter.replica t 0))

(* ------------------------------------------------------------------ *)
(* Fallback accounting: when the service can produce neither a delta nor
   a witness, ship = `Delta and ship = `Witness proposals must carry a
   Full update — attributed (and sized) as the full state, never an
   empty under-counted Delta/Witness. The persisted log is the ground
   truth for what went on the wire. *)

module Diffless = struct
  include Noop

  let name = "noop-diffless"
  let diff ~old_state:_ _ = None

  let apply ~rng ~now state op =
    { (Noop.apply ~rng ~now state op) with witness = None }
end

module R_diffless = Grid_paxos.Replica.Make (Diffless)

let test_ship_fallback_accounted_as_full () =
  List.iter
    (fun ship ->
      let cfg = Config.make ~n:1 ~record_history:true ~ship () in
      let storage, persisted = Grid_paxos.Storage.memory () in
      let r = R_diffless.create ~cfg ~id:0 ~storage () in
      (* Minimal event loop for the solo replica: fire armed timers in
         virtual-time order until it elects itself. *)
      let now = ref 0.0 in
      let timers = ref [] in
      let absorb acts =
        List.iter
          (function
            | After { timer; delay } -> timers := (!now +. delay, timer) :: !timers
            | Send _ | Note _ -> ())
          acts
      in
      absorb (R_diffless.bootstrap r);
      let steps = ref 0 in
      while (not (R_diffless.is_leader r)) && !steps < 500 do
        incr steps;
        match List.sort compare !timers with
        | [] -> Alcotest.fail "solo replica ran out of timers"
        | (at, tm) :: rest ->
          timers := rest;
          now := Float.max !now at;
          absorb (R_diffless.handle r ~now:!now (Timer tm))
      done;
      Alcotest.(check bool) "solo replica leads" true (R_diffless.is_leader r);
      for seq = 1 to 3 do
        let req =
          {
            id =
              Grid_util.Ids.Request_id.make
                ~client:(Grid_util.Ids.Client_id.of_int 1) ~seq;
            rtype = Write;
            payload = Noop.encode_op Noop.Noop_write;
            trace = no_trace;
          }
        in
        absorb
          (R_diffless.handle r ~now:!now
             (Receive { src = client_node req.id.client; msg = Client_req req }))
      done;
      Alcotest.(check int) "three instances committed" 3
        (R_diffless.commit_point r);
      let entries = (persisted ()).entries in
      Alcotest.(check int) "three proposals persisted" 3 (List.length entries);
      List.iter
        (fun (e : recovery_entry) ->
          match e.proposal.update with
          | Full s ->
            Alcotest.(check bool) "full payload decodes to a real state" true
              ((Diffless.decode_state s).Noop.writes >= 1);
            Alcotest.(check int) "state_update_size counts the full bytes"
              (String.length s)
              (state_update_size e.proposal.update);
            Alcotest.(check bool) "proposal_size includes the full bytes" true
              (proposal_size e.proposal >= String.length s)
          | Delta _ | Witness _ ->
            Alcotest.fail "diffless service must fall back to Full shipping")
        entries)
    [ `Delta; `Witness ]

(* ------------------------------------------------------------------ *)
(* End-to-end property: for ANY random op sequence, the replicated KV
   equals a sequential reference execution, on every replica. *)

module RT_kv = Grid_runtime.Runtime.Make (Grid_services.Kv_store)
module Kv = Grid_services.Kv_store

let gen_kv_op =
  QCheck2.Gen.(
    let key = map (fun i -> "k" ^ string_of_int i) (int_range 0 4) in
    oneof
      [
        map2 (fun key value -> Kv.Put { key; value }) key (string_size (int_range 0 6));
        map (fun k -> Kv.Del k) key;
        map2 (fun key value -> Kv.Append { key; value }) key (string_size (int_range 0 3));
      ])

let prop_replicated_kv_equals_reference =
  QCheck2.Test.make ~name:"replicated KV = sequential reference (all replicas)" ~count:30
    QCheck2.Gen.(pair (int_range 1 1000) (list_size (int_range 1 25) gen_kv_op))
    (fun (seed, ops) ->
      let reference =
        List.fold_left
          (fun st op -> (Kv.apply ~rng:(Grid_util.Rng.of_int 0) ~now:0.0 st op).state)
          (Kv.initial ()) ops
      in
      let t = RT_kv.create ~seed ~cfg:(base_cfg ()) ~scenario:(Scenario.uniform ()) () in
      let remaining = ref ops in
      let _ =
        RT_kv.run_closed_loop t ~clients:1 ~requests_per_client:(List.length ops)
          ~gen:(fun ~client:_ () ->
            match !remaining with
            | [] -> None
            | op :: rest ->
              remaining := rest;
              Some (Write, Kv.encode_op op))
      in
      RT_kv.run_until t (RT_kv.now t +. 500.0);
      List.for_all
        (fun i ->
          String.equal
            (Kv.encode_state (RT_kv.R.state (RT_kv.replica t i)))
            (Kv.encode_state reference))
        [ 0; 1; 2 ])

(* The paper's core claim as a property: a NONDETERMINISTIC service,
   replicated under state shipping, keeps all replicas byte-identical for
   any op sequence — even though re-executing the same sequence twice
   (different RNG draws, different clock readings) would diverge. *)

let gen_broker_op =
  QCheck2.Gen.(
    oneof
      [
        map2 (fun rid site -> Broker.Register { rid; site; capacity = 3 })
          (int_range 0 8) (int_range 0 1);
        map2 (fun site units -> Broker.Select { site; units; strategy = Broker.Uniform })
          (int_range 0 1) (int_range 1 2);
        map2 (fun site units -> Broker.Select { site; units; strategy = Broker.Power_of_two })
          (int_range 0 1) (int_range 1 2);
        map2 (fun rid units -> Broker.Release { rid; units }) (int_range 0 8) (int_range 1 2);
      ])

let prop_replicated_broker_replicas_identical =
  QCheck2.Test.make ~name:"nondeterministic broker: replicas byte-identical" ~count:25
    QCheck2.Gen.(pair (int_range 1 1000) (list_size (int_range 1 20) gen_broker_op))
    (fun (seed, ops) ->
      let t = RT_broker.create ~seed ~cfg:(base_cfg ()) ~scenario:(Scenario.uniform ()) () in
      let remaining = ref ops in
      let _ =
        RT_broker.run_closed_loop t ~clients:1 ~requests_per_client:(List.length ops)
          ~gen:(fun ~client:_ () ->
            match !remaining with
            | [] -> None
            | op :: rest ->
              remaining := rest;
              Some (Write, Broker.encode_op op))
      in
      RT_broker.run_until t (RT_broker.now t +. 500.0);
      let enc i = Broker.encode_state (RT_broker.R.state (RT_broker.replica t i)) in
      String.equal (enc 0) (enc 1) && String.equal (enc 0) (enc 2))

module RT_lease = Grid_runtime.Runtime.Make (Grid_services.Lease_manager)
module Lease = Grid_services.Lease_manager

let gen_lease_op =
  QCheck2.Gen.(
    let resource = map (fun i -> "r" ^ string_of_int i) (int_range 0 3) in
    oneof
      [
        map2 (fun resource holder ->
            Lease.Acquire { resource; holder; ttl_ms = 25.0 })
          resource (int_range 1 3);
        map2 (fun resource holder ->
            Lease.Renew { resource; holder; ttl_ms = 25.0 })
          resource (int_range 1 3);
        map2 (fun resource holder -> Lease.Release { resource; holder })
          resource (int_range 1 3);
      ])

let prop_replicated_leases_identical =
  (* Lease decisions depend on the leader's clock at examination time
     (short TTLs make expiry races frequent at ~4 ms per request);
     replicas must still agree exactly. *)
  QCheck2.Test.make ~name:"clock-dependent leases: replicas byte-identical" ~count:25
    QCheck2.Gen.(pair (int_range 1 1000) (list_size (int_range 1 20) gen_lease_op))
    (fun (seed, ops) ->
      let t = RT_lease.create ~seed ~cfg:(base_cfg ()) ~scenario:(Scenario.uniform ()) () in
      let remaining = ref ops in
      let _ =
        RT_lease.run_closed_loop t ~clients:1 ~requests_per_client:(List.length ops)
          ~gen:(fun ~client:_ () ->
            match !remaining with
            | [] -> None
            | op :: rest ->
              remaining := rest;
              Some (Write, Lease.encode_op op))
      in
      RT_lease.run_until t (RT_lease.now t +. 500.0);
      let enc i = Lease.encode_state (RT_lease.R.state (RT_lease.replica t i)) in
      String.equal (enc 0) (enc 1) && String.equal (enc 0) (enc 2))

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let suite =
  [
    ( "replication.properties",
      qcheck
        [
          prop_replicated_kv_equals_reference;
          prop_replicated_broker_replicas_identical;
          prop_replicated_leases_identical;
        ] );
    ( "replication.e2e",
      [
        Alcotest.test_case "initial leader is r0" `Quick test_leader_election_is_r0;
        Alcotest.test_case "counter agreement (3 clients)" `Quick test_counter_agreement;
        Alcotest.test_case "reads reflect writes" `Quick test_reads_reflect_writes;
        Alcotest.test_case "duplicate suppression under loss" `Quick
          test_duplicate_suppression;
        Alcotest.test_case "ship modes agree" `Quick test_ship_modes_agree;
        Alcotest.test_case "delta/witness fallback ships (and counts) Full" `Quick
          test_ship_fallback_accounted_as_full;
        Alcotest.test_case "five replicas" `Quick test_five_replicas;
        Alcotest.test_case "single replica" `Quick test_single_replica;
      ] );
    ( "replication.nondeterminism",
      [
        Alcotest.test_case "broker consistent under state shipping" `Quick
          test_broker_state_shipping_consistent;
        Alcotest.test_case "broker diverges under request shipping" `Quick
          test_broker_request_shipping_diverges;
        Alcotest.test_case "scheduler replicated consistently" `Quick
          test_scheduler_replicated_consistent;
      ] );
    ( "replication.latency",
      [
        Alcotest.test_case "original < read < write (§4.1)" `Quick test_latency_ordering;
        Alcotest.test_case "X-Paxos hides execution cost (§3.4)" `Quick
          test_execution_cost_parallelism;
      ] );
  ]
