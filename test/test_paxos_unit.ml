(* Unit tests for the paxos building blocks: ballots, message codecs,
   the replica log, stable storage, snapshots and configuration. *)

module Types = Grid_paxos.Types
module Ballot = Grid_paxos.Types.Ballot
module Plog = Grid_paxos.Plog
module Storage = Grid_paxos.Storage
module Snapshot = Grid_paxos.Snapshot
module Config = Grid_paxos.Config
module Wire = Grid_codec.Wire
module Ids = Grid_util.Ids

let mk_req ?(client = 1) ?(seq = 1) ?(rtype = Types.Write) ?(payload = "p") () : Types.request =
  { id = Ids.Request_id.make ~client:(Ids.Client_id.of_int client) ~seq; rtype; payload;
    trace = Types.no_trace }

let mk_proposal ?(payload = "p") ?(update = Types.Full "state") () : Types.proposal =
  {
    requests = [ mk_req ~payload () ];
    update;
    replies = [ { req = (mk_req ()).id; status = Types.Ok; payload = "r" } ];
  }

(* ------------------------------------------------------------------ *)
(* Ballots and proposal numbers *)

let test_ballot_order () =
  let b r h = Ballot.make ~round:r ~holder:h in
  Alcotest.(check bool) "round dominates" true (Ballot.compare (b 2 0) (b 1 5) > 0);
  Alcotest.(check bool) "holder breaks ties" true (Ballot.compare (b 1 2) (b 1 1) > 0);
  Alcotest.(check bool) "equal" true (Ballot.equal (b 3 1) (b 3 1));
  Alcotest.(check bool) "zero smallest" true (Ballot.compare Ballot.zero (b 0 0) < 0)

let prop_ballot_total_order =
  QCheck2.Test.make ~name:"ballot order is antisymmetric + transitive-ish" ~count:300
    QCheck2.Gen.(
      triple
        (pair (int_range 0 5) (int_range 0 5))
        (pair (int_range 0 5) (int_range 0 5))
        (pair (int_range 0 5) (int_range 0 5)))
    (fun ((r1, h1), (r2, h2), (r3, h3)) ->
      let a = Ballot.make ~round:r1 ~holder:h1 in
      let b = Ballot.make ~round:r2 ~holder:h2 in
      let c = Ballot.make ~round:r3 ~holder:h3 in
      let antisym = compare (Ballot.compare a b) (-(Ballot.compare b a)) = 0 in
      let trans =
        if Ballot.compare a b <= 0 && Ballot.compare b c <= 0 then
          Ballot.compare a c <= 0
        else true
      in
      antisym && trans)

let test_pnum_lexicographic () =
  let module Pnum = Grid_paxos.Types.Pnum in
  let p b i = Pnum.make ~ballot:(Ballot.make ~round:b ~holder:0) ~instance:i in
  Alcotest.(check bool) "ballot first" true (Pnum.compare (p 2 1) (p 1 99) > 0);
  Alcotest.(check bool) "instance second" true (Pnum.compare (p 1 2) (p 1 1) > 0)

let test_ballot_codec () =
  let b = Ballot.make ~round:42 ~holder:2 in
  let b' = Wire.decode (Wire.encode (fun e -> Ballot.encode e b)) Ballot.decode in
  Alcotest.(check bool) "roundtrip" true (Ballot.equal b b')

(* ------------------------------------------------------------------ *)
(* Message-component codecs *)

let gen_rtype =
  QCheck2.Gen.(
    oneof
      [
        return Types.Read;
        return Types.Write;
        return Types.Original;
        map (fun t -> Types.Txn_op t) (int_range 0 100);
        map (fun t -> Types.Txn_commit t) (int_range 0 100);
        map (fun t -> Types.Txn_abort t) (int_range 0 100);
      ])

let gen_request =
  QCheck2.Gen.(
    map
      (fun (client, seq, rtype, payload) ->
        ({ id = Ids.Request_id.make ~client:(Ids.Client_id.of_int client) ~seq;
           rtype;
           payload;
           trace = Types.no_trace }
          : Types.request))
      (quad (int_range 0 1000) (int_range 0 100000) gen_rtype string))

let prop_request_roundtrip =
  QCheck2.Test.make ~name:"request codec roundtrip" ~count:300 gen_request (fun r ->
      let r' =
        Wire.decode (Wire.encode (fun e -> Types.encode_request e r)) Types.decode_request
      in
      Ids.Request_id.equal r.id r'.id && r.rtype = r'.rtype && r.payload = r'.payload)

let gen_status = QCheck2.Gen.oneofl [ Types.Ok; Types.Txn_aborted; Types.Txn_conflict ]

let gen_reply =
  QCheck2.Gen.(
    map
      (fun (client, seq, status, payload) ->
        ({ req = Ids.Request_id.make ~client:(Ids.Client_id.of_int client) ~seq;
           status;
           payload }
          : Types.reply))
      (quad (int_range 0 1000) (int_range 0 100000) gen_status string))

let prop_reply_roundtrip =
  QCheck2.Test.make ~name:"reply codec roundtrip" ~count:300 gen_reply (fun r ->
      let r' = Wire.decode (Wire.encode (fun e -> Types.encode_reply e r)) Types.decode_reply in
      r = r')

let gen_update =
  QCheck2.Gen.(
    oneof
      [
        map (fun s -> Types.Full s) string;
        map (fun s -> Types.Delta s) string;
        map (fun s -> Types.Witness s) string;
      ])

let prop_proposal_roundtrip =
  QCheck2.Test.make ~name:"proposal codec roundtrip" ~count:300
    QCheck2.Gen.(triple (list_size (int_range 0 5) gen_request) gen_update
                   (list_size (int_range 0 5) gen_reply))
    (fun (requests, update, replies) ->
      let p : Types.proposal = { requests; update; replies } in
      let p' =
        Wire.decode (Wire.encode (fun e -> Types.encode_proposal e p)) Types.decode_proposal
      in
      p = p')

let test_update_size () =
  Alcotest.(check int) "size" 5 (Types.state_update_size (Types.Full "12345"));
  Alcotest.(check int) "delta size" 3 (Types.state_update_size (Types.Delta "abc"))

let test_client_node_mapping () =
  let c = Ids.Client_id.of_int 17 in
  let node = Types.client_node c in
  Alcotest.(check bool) "is client node" true (Types.node_is_client node);
  Alcotest.(check bool) "replica node is not" false (Types.node_is_client 2);
  Alcotest.(check int) "roundtrip" 17 (Ids.Client_id.to_int (Types.client_of_node node))

(* ------------------------------------------------------------------ *)
(* Plog *)

let ballot r = Ballot.make ~round:r ~holder:0

let test_plog_accept_commit () =
  let log = Plog.create () in
  Alcotest.(check int) "initial cp" 0 (Plog.commit_point log);
  Alcotest.(check bool) "accept 1" true (Plog.accept log ~instance:1 ~ballot:(ballot 1) (mk_proposal ()));
  Alcotest.(check bool) "accept 2" true (Plog.accept log ~instance:2 ~ballot:(ballot 1) (mk_proposal ()));
  Alcotest.(check int) "max accepted" 2 (Plog.max_accepted log);
  Alcotest.(check bool) "commit 1" true (Plog.commit log ~instance:1);
  Alcotest.(check int) "cp 1" 1 (Plog.commit_point log);
  Alcotest.(check bool) "commit unknown" false (Plog.commit log ~instance:5)

let test_plog_commit_contiguity () =
  let log = Plog.create () in
  for i = 1 to 4 do
    ignore (Plog.accept log ~instance:i ~ballot:(ballot 1) (mk_proposal ()))
  done;
  ignore (Plog.commit log ~instance:3);
  Alcotest.(check int) "cp stalls before gap" 0 (Plog.commit_point log);
  ignore (Plog.commit log ~instance:1);
  Alcotest.(check int) "cp 1" 1 (Plog.commit_point log);
  ignore (Plog.commit log ~instance:2);
  Alcotest.(check int) "cp jumps over pre-committed 3" 3 (Plog.commit_point log)

let test_plog_ballot_overwrite () =
  let log = Plog.create () in
  ignore (Plog.accept log ~instance:1 ~ballot:(ballot 2) (mk_proposal ~payload:"high" ()));
  Alcotest.(check bool) "lower ballot rejected" false
    (Plog.accept log ~instance:1 ~ballot:(ballot 1) (mk_proposal ~payload:"low" ()));
  Alcotest.(check bool) "higher ballot accepted" true
    (Plog.accept log ~instance:1 ~ballot:(ballot 3) (mk_proposal ~payload:"higher" ()));
  (match Plog.get log 1 with
  | Some e ->
    Alcotest.(check string) "latest proposal wins" "higher"
      (List.hd e.proposal.requests).payload
  | None -> Alcotest.fail "entry missing");
  ignore (Plog.commit log ~instance:1);
  Alcotest.(check bool) "committed entry never overwritten" false
    (Plog.accept log ~instance:1 ~ballot:(ballot 9) (mk_proposal ()))

let test_plog_accepted_above () =
  let log = Plog.create () in
  for i = 1 to 5 do
    ignore (Plog.accept log ~instance:i ~ballot:(ballot 1) (mk_proposal ()))
  done;
  ignore (Plog.commit log ~instance:1);
  ignore (Plog.commit log ~instance:2);
  let above = Plog.accepted_above log 2 in
  Alcotest.(check (list int)) "instances above 2" [ 3; 4; 5 ]
    (List.map (fun (e : Types.recovery_entry) -> e.instance) above)

let test_plog_prune () =
  let log = Plog.create () in
  for i = 1 to 3 do
    ignore (Plog.accept log ~instance:i ~ballot:(ballot 1)
              (mk_proposal ~update:(Types.Full "big state") ()));
    ignore (Plog.commit log ~instance:i)
  done;
  Plog.prune_below log 2;
  (match Plog.get log 1 with
  | Some e ->
    Alcotest.(check bool) "pruned flag" true e.pruned;
    Alcotest.(check int) "state dropped" 0 (Types.state_update_size e.proposal.update);
    Alcotest.(check int) "requests kept" 1 (List.length e.proposal.requests)
  | None -> Alcotest.fail "entry 1 missing");
  (match Plog.get log 3 with
  | Some e -> Alcotest.(check bool) "3 not pruned" false e.pruned
  | None -> Alcotest.fail "entry 3 missing");
  Alcotest.(check (list int)) "pruned entries not in accepted_above" [ 3 ]
    (List.map
       (fun (e : Types.recovery_entry) -> e.instance)
       (Plog.accepted_above log 2))

let test_plog_install_commit_point () =
  let log = Plog.create () in
  ignore (Plog.accept log ~instance:1 ~ballot:(ballot 1) (mk_proposal ()));
  Plog.install_commit_point log 10;
  Alcotest.(check int) "cp jumped" 10 (Plog.commit_point log);
  Alcotest.(check bool) "old entries dropped" true (Plog.get log 1 = None);
  Plog.install_commit_point log 5;
  Alcotest.(check int) "never moves backward" 10 (Plog.commit_point log)

let test_plog_committed_requests () =
  let log = Plog.create () in
  ignore (Plog.accept log ~instance:1 ~ballot:(ballot 1) (mk_proposal ~payload:"a" ()));
  ignore (Plog.accept log ~instance:2 ~ballot:(ballot 1) (mk_proposal ~payload:"b" ()));
  ignore (Plog.commit log ~instance:1);
  Alcotest.(check (list string)) "only committed, in order" [ "a" ]
    (List.map (fun (r : Types.request) -> r.payload) (Plog.committed_requests log))

let test_plog_instance_validation () =
  let log = Plog.create () in
  Alcotest.check_raises "instance 0 invalid" (Invalid_argument "Plog.accept: instances start at 1")
    (fun () -> ignore (Plog.accept log ~instance:0 ~ballot:(ballot 1) (mk_proposal ())))

(* ------------------------------------------------------------------ *)
(* Storage *)

let test_storage_memory () =
  let store, read = Storage.memory () in
  store.persist_promise (ballot 3);
  store.persist_entry ~instance:1 ~ballot:(ballot 3) (mk_proposal ());
  store.persist_entry ~instance:2 ~ballot:(ballot 3) (mk_proposal ~payload:"q" ());
  store.persist_commit 1;
  store.persist_commit 0;  (* regressions ignored *)
  store.persist_snapshot "snap";
  let p = read () in
  Alcotest.(check bool) "promise" true (Ballot.equal (ballot 3) p.promised);
  Alcotest.(check int) "entries" 2 (List.length p.entries);
  Alcotest.(check int) "commit point" 1 p.commit_point;
  Alcotest.(check (option string)) "snapshot" (Some "snap") p.snapshot

let with_tmp f =
  let dir = Filename.temp_file "grid_storage" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () -> f (Filename.concat dir "replica0"))

let test_storage_file_roundtrip () =
  with_tmp (fun path ->
      let store, recovered, _ = Storage.file ~path in
      Alcotest.(check bool) "fresh store empty" true (recovered = None);
      store.persist_promise (ballot 5);
      store.persist_entry ~instance:1 ~ballot:(ballot 5) (mk_proposal ~payload:"x" ());
      store.persist_commit 1;
      store.persist_snapshot "snappy";
      (* Reopen. *)
      let _store2, recovered2, _ = Storage.file ~path in
      match recovered2 with
      | None -> Alcotest.fail "expected recovery"
      | Some p ->
        Alcotest.(check bool) "promise" true (Ballot.equal (ballot 5) p.promised);
        Alcotest.(check int) "commit" 1 p.commit_point;
        Alcotest.(check (option string)) "snapshot" (Some "snappy") p.snapshot;
        (match p.entries with
        | [ e ] ->
          Alcotest.(check int) "instance" 1 e.instance;
          Alcotest.(check string) "payload" "x" (List.hd e.proposal.requests).payload
        | _ -> Alcotest.fail "expected one entry"))

let test_storage_file_torn_tail () =
  with_tmp (fun path ->
      let store, _, _ = Storage.file ~path in
      store.persist_promise (ballot 2);
      store.persist_commit 7;
      (* Simulate a torn write: append garbage that parses as a frame
         header but fails the CRC. *)
      let oc = open_out_gen [ Open_append; Open_binary ] 0o644 (path ^ ".log") in
      output_string oc "\x08\x00\x00\x00garbage!";
      close_out oc;
      let _store2, recovered, _ = Storage.file ~path in
      match recovered with
      | None -> Alcotest.fail "expected recovery despite torn tail"
      | Some p ->
        Alcotest.(check int) "commit survives" 7 p.commit_point;
        Alcotest.(check bool) "promise survives" true (Ballot.equal (ballot 2) p.promised))

let test_storage_file_latest_entry_wins () =
  with_tmp (fun path ->
      let store, _, _ = Storage.file ~path in
      store.persist_entry ~instance:1 ~ballot:(ballot 1) (mk_proposal ~payload:"old" ());
      store.persist_entry ~instance:1 ~ballot:(ballot 2) (mk_proposal ~payload:"new" ());
      let _s, recovered, _ = Storage.file ~path in
      match recovered with
      | Some { entries = [ e ]; _ } ->
        Alcotest.(check string) "latest record wins" "new"
          (List.hd e.proposal.requests).payload
      | _ -> Alcotest.fail "expected single entry")

let test_storage_null () =
  let store = Storage.null () in
  store.persist_promise (ballot 1);
  store.persist_entry ~instance:1 ~ballot:(ballot 1) (mk_proposal ());
  store.persist_commit 1;
  store.persist_snapshot "s"
(* nothing to assert: just must not fail *)

(* Recovery edges: what the report says and what survives when the log
   is torn, bit-flipped, or missing. *)

let log_size path =
  let ic = open_in_bin (path ^ ".log") in
  let n = in_channel_length ic in
  close_in ic;
  n

let xor_byte file off =
  let fd = Unix.openfile file [ Unix.O_RDWR ] 0o644 in
  let b = Bytes.create 1 in
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  ignore (Unix.read fd b 0 1);
  Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0x40));
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  ignore (Unix.write fd b 0 1);
  Unix.close fd

let test_storage_tear_log_recovery () =
  with_tmp (fun path ->
      let store, _, _ = Storage.file ~path in
      store.persist_promise (ballot 4);
      store.persist_commit 3;
      for i = 1 to 4 do
        store.persist_entry ~instance:i ~ballot:(ballot 4)
          (mk_proposal ~payload:"keep" ())
      done;
      let rng = Grid_util.Rng.of_int 11 in
      Alcotest.(check bool) "tear applied" true (Storage.tear_log ~path ~rng);
      let _s, recovered, report = Storage.file ~path in
      Alcotest.(check bool) "torn tail flagged" true report.Storage.torn_tail;
      Alcotest.(check bool) "log truncated to valid prefix" true
        report.log_truncated;
      Alcotest.(check bool) "suffix dropped" true (report.bytes_dropped > 0);
      (match recovered with
      | None -> Alcotest.fail "prefix must recover"
      | Some p ->
        Alcotest.(check bool) "promise survives" true
          (Ballot.equal (ballot 4) p.promised);
        Alcotest.(check int) "commit survives" 3 p.commit_point);
      (* The salvage rewrote the file to its valid prefix, so the next
         recovery sees a clean log. *)
      let _s2, _, report2 = Storage.file ~path in
      Alcotest.(check bool) "second recovery clean" false
        (report2.Storage.torn_tail || report2.interior_corruption
       || report2.log_truncated))

let test_storage_interior_corruption () =
  with_tmp (fun path ->
      let store, _, _ = Storage.file ~path in
      store.persist_promise (ballot 9);
      store.persist_commit 2;
      let prefix_len = log_size path in
      store.persist_entry ~instance:3 ~ballot:(ballot 9) (mk_proposal ~payload:"mid" ());
      store.persist_entry ~instance:4 ~ballot:(ballot 9) (mk_proposal ~payload:"last" ());
      (* Flip a bit inside the instance-3 record: its CRC fails while
         valid-looking data (the instance-4 record) sits behind it — the
         untrusted suffix is abandoned, the prefix salvaged. *)
      xor_byte (path ^ ".log") (prefix_len + 6);
      let _s, recovered, report = Storage.file ~path in
      Alcotest.(check bool) "interior corruption flagged" true
        report.Storage.interior_corruption;
      Alcotest.(check bool) "log truncated" true report.log_truncated;
      Alcotest.(check int) "prefix salvaged" prefix_len report.bytes_salvaged;
      Alcotest.(check bool) "suffix abandoned" true (report.bytes_dropped > 0);
      match recovered with
      | None -> Alcotest.fail "prefix must recover"
      | Some p ->
        Alcotest.(check int) "commit survives" 2 p.commit_point;
        (* The lost instances resync from peers at runtime. *)
        Alcotest.(check int) "corrupt-suffix entries gone" 0
          (List.length p.entries))

let test_storage_snapshot_only () =
  with_tmp (fun path ->
      let store, _, _ = Storage.file ~path in
      store.persist_snapshot "snap-only";
      (* Lose the log entirely. *)
      Sys.remove (path ^ ".log");
      let _s, recovered, report = Storage.file ~path in
      Alcotest.(check bool) "snapshot used" true report.Storage.snapshot_used;
      Alcotest.(check bool) "no corruption flagged" false
        (report.torn_tail || report.interior_corruption || report.snapshot_corrupt);
      match recovered with
      | None -> Alcotest.fail "snapshot alone must recover"
      | Some p ->
        Alcotest.(check (option string)) "snapshot body" (Some "snap-only") p.snapshot;
        Alcotest.(check int) "no entries" 0 (List.length p.entries))

let test_storage_snapshot_corrupt () =
  with_tmp (fun path ->
      let store, _, _ = Storage.file ~path in
      store.persist_commit 5;
      store.persist_snapshot "to-be-mangled";
      xor_byte (path ^ ".snap") 2;
      let _s, recovered, report = Storage.file ~path in
      Alcotest.(check bool) "snapshot corruption detected" true
        report.Storage.snapshot_corrupt;
      Alcotest.(check bool) "corrupt snapshot not used" false report.snapshot_used;
      match recovered with
      | None -> Alcotest.fail "log must still recover"
      | Some p ->
        Alcotest.(check (option string)) "fell back to log replay" None p.snapshot;
        Alcotest.(check int) "commit from log" 5 p.commit_point)

let test_storage_faulty_wrapper () =
  let inner, read = Storage.memory () in
  let store, ctl = Storage.faulty ~rng:(Grid_util.Rng.of_int 3) inner in
  (* No rates armed: transparent. *)
  store.persist_promise (ballot 2);
  Alcotest.(check bool) "passthrough" true (Ballot.equal (ballot 2) (read ()).promised);
  (* Armed tear: the persist dies mid-write, the record is lost. *)
  ctl.Storage.tear_rate <- 1.0;
  Alcotest.check_raises "torn persist raises" Storage.Crashed (fun () ->
      store.persist_commit 1);
  Alcotest.(check int) "tear counted" 1 ctl.torn;
  Alcotest.(check int) "record lost" 0 (read ()).commit_point;
  ctl.tear_rate <- 0.0;
  (* Meta-only drops: commit/snapshot records vanish silently, but the
     promise and entry records the durability contract depends on land. *)
  ctl.drop_rate <- 1.0;
  store.persist_commit 4;
  store.persist_snapshot "gone";
  store.persist_entry ~instance:1 ~ballot:(ballot 2) (mk_proposal ());
  store.persist_promise (ballot 3);
  let p = read () in
  Alcotest.(check int) "commit dropped" 0 p.commit_point;
  Alcotest.(check (option string)) "snapshot dropped" None p.snapshot;
  Alcotest.(check int) "entry persisted despite drop dice" 1 (List.length p.entries);
  Alcotest.(check bool) "promise persisted despite drop dice" true
    (Ballot.equal (ballot 3) p.promised);
  Alcotest.(check int) "drops counted" 2 ctl.dropped

(* ------------------------------------------------------------------ *)
(* Snapshot *)

let test_snapshot_roundtrip () =
  let snap =
    {
      Snapshot.commit_point = 12;
      state = "opaque-state";
      dedup =
        [
          (1, { Types.req = Ids.Request_id.make ~client:(Ids.Client_id.of_int 1) ~seq:3;
                status = Types.Ok; payload = "r1" });
          (2, { Types.req = Ids.Request_id.make ~client:(Ids.Client_id.of_int 2) ~seq:9;
                status = Types.Txn_aborted; payload = "" });
        ];
      prepared = [ (1_000_000_007, "opaque-branch") ];
      outcomes = [ (1_000_000_001, true); (1_000_000_002, false) ];
      reshard = "";
    }
  in
  let snap' = Snapshot.decode (Snapshot.encode snap) in
  Alcotest.(check int) "cp" 12 snap'.commit_point;
  Alcotest.(check string) "state" "opaque-state" snap'.state;
  Alcotest.(check int) "dedup size" 2 (List.length snap'.dedup);
  Alcotest.(check int) "prepared size" 1 (List.length snap'.prepared);
  Alcotest.(check bool) "outcomes roundtrip"
    true
    (snap'.outcomes = [ (1_000_000_001, true); (1_000_000_002, false) ])

(* ------------------------------------------------------------------ *)
(* Config *)

let test_config_quorum () =
  Alcotest.(check int) "n=1" 1 (Config.quorum (Config.default ~n:1));
  Alcotest.(check int) "n=3" 2 (Config.quorum (Config.default ~n:3));
  Alcotest.(check int) "n=4" 3 (Config.quorum (Config.default ~n:4));
  Alcotest.(check int) "n=5" 3 (Config.quorum (Config.default ~n:5));
  Alcotest.(check int) "n=7" 4 (Config.quorum (Config.default ~n:7))

let test_config_replica_ids () =
  Alcotest.(check (list int)) "ids" [ 0; 1; 2 ] (Config.replica_ids (Config.default ~n:3))

let test_config_validation () =
  Alcotest.check_raises "n=0" (Invalid_argument "Config.default: need at least one replica")
    (fun () -> ignore (Config.default ~n:0))

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let suite =
  [
    ( "paxos.ballot",
      Alcotest.test_case "order" `Quick test_ballot_order
      :: Alcotest.test_case "pnum lexicographic" `Quick test_pnum_lexicographic
      :: Alcotest.test_case "codec" `Quick test_ballot_codec
      :: qcheck [ prop_ballot_total_order ] );
    ( "paxos.codecs",
      Alcotest.test_case "update size" `Quick test_update_size
      :: Alcotest.test_case "client node mapping" `Quick test_client_node_mapping
      :: qcheck [ prop_request_roundtrip; prop_reply_roundtrip; prop_proposal_roundtrip ] );
    ( "paxos.plog",
      [
        Alcotest.test_case "accept/commit" `Quick test_plog_accept_commit;
        Alcotest.test_case "commit contiguity" `Quick test_plog_commit_contiguity;
        Alcotest.test_case "ballot overwrite rules" `Quick test_plog_ballot_overwrite;
        Alcotest.test_case "accepted_above" `Quick test_plog_accepted_above;
        Alcotest.test_case "prune" `Quick test_plog_prune;
        Alcotest.test_case "install commit point" `Quick test_plog_install_commit_point;
        Alcotest.test_case "committed requests" `Quick test_plog_committed_requests;
        Alcotest.test_case "instance validation" `Quick test_plog_instance_validation;
      ] );
    ( "paxos.storage",
      [
        Alcotest.test_case "memory roundtrip" `Quick test_storage_memory;
        Alcotest.test_case "file roundtrip" `Quick test_storage_file_roundtrip;
        Alcotest.test_case "torn tail tolerated" `Quick test_storage_file_torn_tail;
        Alcotest.test_case "latest entry wins" `Quick test_storage_file_latest_entry_wins;
        Alcotest.test_case "null storage" `Quick test_storage_null;
        Alcotest.test_case "tear_log recovery + salvage" `Quick
          test_storage_tear_log_recovery;
        Alcotest.test_case "interior corruption salvages prefix" `Quick
          test_storage_interior_corruption;
        Alcotest.test_case "snapshot-only recovery" `Quick test_storage_snapshot_only;
        Alcotest.test_case "corrupt snapshot falls back to log" `Quick
          test_storage_snapshot_corrupt;
        Alcotest.test_case "faulty wrapper tears and drops" `Quick
          test_storage_faulty_wrapper;
      ] );
    ("paxos.snapshot", [ Alcotest.test_case "roundtrip" `Quick test_snapshot_roundtrip ]);
    ( "paxos.config",
      [
        Alcotest.test_case "quorum" `Quick test_config_quorum;
        Alcotest.test_case "replica ids" `Quick test_config_replica_ids;
        Alcotest.test_case "validation" `Quick test_config_validation;
      ] );
  ]
