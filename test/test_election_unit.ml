(* Engine-level election and T-Paxos edge cases, driven by hand through
   the harness: dueling candidates, prepare retransmission, recovered
   leaders deferring to the incumbent, and transaction-branch mechanics
   at the engine level. *)

module H = Engine_harness
module Kv = Grid_services.Kv_store
module Counter = Grid_services.Counter
module Replica = Grid_paxos.Replica.Make (Counter)
module Ids = Grid_util.Ids
module Wire = Grid_codec.Wire
open Grid_paxos.Types

let add n = Counter.encode_op (Counter.Add n)

(* Start a candidacy on replica [i] without delivering anything. *)
let start_candidacy t i =
  H.feed t i (Timer Suspicion_tick);
  H.advance t 1000.0;
  H.feed t i (Timer Suspicion_tick);
  H.advance t 1000.0;
  H.feed t i (Timer Suspicion_tick);
  H.advance t 50.0;
  ignore (H.fire t i (function Stability_check _ -> true | _ -> false))

let test_dueling_candidates () =
  (* Two replicas start prepares concurrently; ballots are totally
     ordered, so exactly one wins and the other steps down. *)
  let t = H.create () in
  start_candidacy t 0;
  start_candidacy t 1;
  (* Interleave deliveries arbitrarily; drain everything. *)
  H.deliver_all t;
  let leaders =
    List.filter (fun i -> Replica.is_leader t.replicas.(i)) [ 0; 1; 2 ]
  in
  Alcotest.(check int) "exactly one leader" 1 (List.length leaders);
  (* The survivor can commit. *)
  H.submit t (H.client_request ~seq:1 ~rtype:Write ~payload:(add 1) ());
  H.deliver_all t;
  Alcotest.(check int) "commits" 1 (Replica.commit_point t.replicas.(List.hd leaders))

let test_prepare_retry_idempotent () =
  let t = H.create () in
  start_candidacy t 0;
  (* Fire the prepare retry before any delivery: duplicate prepares. *)
  ignore (H.fire t 0 (function Prepare_retry _ -> true | _ -> false));
  H.deliver_all t;
  Alcotest.(check bool) "leader despite duplicates" true (Replica.is_leader t.replicas.(0));
  H.submit t (H.client_request ~seq:1 ~rtype:Write ~payload:(add 2) ());
  H.deliver_all t;
  Alcotest.(check int) "still works" 2 (Replica.state t.replicas.(0))

let test_ballot_strictly_increases () =
  let t = H.create () in
  H.elect t 0;
  let b0 = Replica.ballot t.replicas.(0) in
  (* Depose and re-elect via replica 1. *)
  start_candidacy t 1;
  H.deliver_all t;
  let b1 = Replica.ballot t.replicas.(1) in
  Alcotest.(check bool) "new ballot higher" true (Ballot.compare b1 b0 > 0);
  Alcotest.(check bool) "r1 leads" true (Replica.is_leader t.replicas.(1));
  Alcotest.(check bool) "r0 deposed" false (Replica.is_leader t.replicas.(0))

let test_recovered_leader_defers_to_incumbent () =
  (* §3.6 stability: after its heartbeats spread the new leader's
     promise, the recovered old leader does not attempt a takeover. *)
  let t = H.create () in
  H.elect t 0;
  (* r0 "crashes": drop its traffic, elect r1. *)
  H.drop t ~filter:(fun src dst _ -> src = 0 || dst = 0);
  start_candidacy t 1;
  H.deliver_all ~filter:(fun src dst _ -> src <> 0 && dst <> 0) t;
  Alcotest.(check bool) "r1 leads" true (Replica.is_leader t.replicas.(1));
  (* r0 "recovers" (restart) and hears r1's heartbeat. *)
  H.absorb t 0 (Replica.restart t.replicas.(0) ~now:t.now);
  ignore (H.fire t 1 (function Hb_tick -> true | _ -> false));
  H.deliver_all t;
  (* r0's suspicion tick must now pick r1 (the incumbent) as candidate,
     not itself, so no Stability_check gets armed. *)
  H.feed t 0 (Timer Suspicion_tick);
  H.advance t 200.0;
  ignore (H.fire t 1 (function Hb_tick -> true | _ -> false));
  H.deliver_all t;
  H.feed t 0 (Timer Suspicion_tick);
  let armed_takeover =
    List.exists
      (fun (i, timer) ->
        i = 0 && match timer with Stability_check _ -> true | _ -> false)
      t.timers
  in
  Alcotest.(check bool) "no takeover attempt" false armed_takeover;
  Alcotest.(check bool) "r1 still leads" true (Replica.is_leader t.replicas.(1))

let test_commit_alone_does_not_elect () =
  (* A replica that merely observes commits from a leader never tries to
     lead while those commits keep arriving (liveness of followership). *)
  let t = H.create () in
  H.elect t 0;
  H.submit t (H.client_request ~seq:1 ~rtype:Write ~payload:(add 1) ());
  H.deliver_all t;
  Alcotest.(check bool) "r2 follower" false (Replica.is_leader t.replicas.(2));
  Alcotest.(check (option int)) "r2 sees r0 as leader" (Some 0)
    (Replica.leader_view t.replicas.(2))

(* ------------------------------------------------------------------ *)
(* T-Paxos engine mechanics over the KV service. *)

module HK = struct
  module Replica = Grid_paxos.Replica.Make (Kv)
  open Grid_paxos.Types

  type t = {
    replicas : Replica.t array;
    mutable pending : (int * int * msg) list;
    mutable timers : (int * timer) list;
    mutable replies : reply list;
    mutable now : float;
  }

  let absorb t i actions =
    List.iter
      (function
        | Send { dst; msg } ->
          if node_is_client dst then begin
            match msg with Reply_msg r -> t.replies <- r :: t.replies | _ -> ()
          end
          else t.pending <- t.pending @ [ (i, dst, msg) ]
        | After { timer; _ } -> t.timers <- t.timers @ [ (i, timer) ]
        | Note _ -> ())
      actions

  let create () =
    let cfg = Grid_paxos.Config.make ~n:3 ~record_history:true () in
    let replicas = Array.init 3 (fun i -> Replica.create ~cfg ~id:i ~seed:(7 + i) ()) in
    let t = { replicas; pending = []; timers = []; replies = []; now = 0.0 } in
    Array.iteri (fun i r -> absorb t i (Replica.bootstrap r)) replicas;
    t

  let feed t i input = absorb t i (Replica.handle t.replicas.(i) ~now:t.now input)

  let deliver_all t =
    let guard = ref 100_000 in
    while t.pending <> [] && !guard > 0 do
      decr guard;
      match t.pending with
      | (src, dst, msg) :: rest ->
        t.pending <- rest;
        feed t dst (Receive { src; msg })
      | [] -> ()
    done

  let fire t i want =
    let rec split acc = function
      | [] -> None
      | ((j, timer) as e) :: rest ->
        if j = i && want timer then Some (timer, List.rev_append acc rest)
        else split (e :: acc) rest
    in
    match split [] t.timers with
    | None -> false
    | Some (timer, rest) ->
      t.timers <- rest;
      feed t i (Timer timer);
      true

  let elect t i =
    feed t i (Timer Suspicion_tick);
    t.now <- t.now +. 1000.0;
    feed t i (Timer Suspicion_tick);
    t.now <- t.now +. 50.0;
    ignore (fire t i (function Stability_check _ -> true | _ -> false));
    deliver_all t;
    assert (Replica.is_leader t.replicas.(i))

  let submit t (r : request) =
    Array.iteri
      (fun i _ -> feed t i (Receive { src = client_node r.id.client; msg = Client_req r }))
      t.replicas

  let req ?(client = 1) ~seq ~rtype ~payload () : request =
    { id = Ids.Request_id.make ~client:(Ids.Client_id.of_int client) ~seq; rtype; payload;
      trace = no_trace }

  let take_replies t =
    let r = List.rev t.replies in
    t.replies <- [];
    r
end

let commit_payload n = Wire.encode (fun e -> Wire.Encoder.uint e n)

let test_txn_ops_no_coordination () =
  (* Engine-level §3.5: transaction ops generate ZERO inter-replica
     messages; only the commit does. *)
  let t = HK.create () in
  HK.elect t 0;
  HK.submit t (HK.req ~seq:1 ~rtype:(Txn_op 1)
                 ~payload:(Kv.encode_op (Kv.Put { key = "a"; value = "1" })) ());
  Alcotest.(check int) "op answered immediately" 1 (List.length (HK.take_replies t));
  let non_hb =
    List.filter (fun (_, _, m) -> msg_kind m <> "heartbeat") t.pending
  in
  Alcotest.(check int) "no coordination traffic for ops" 0 (List.length non_hb);
  HK.submit t (HK.req ~seq:2 ~rtype:(Txn_commit 1) ~payload:(commit_payload 1) ());
  let accepts = List.filter (fun (_, _, m) -> msg_kind m = "accept") t.pending in
  Alcotest.(check int) "commit broadcasts accepts" 2 (List.length accepts);
  HK.deliver_all t;
  Alcotest.(check int) "commit answered" 1 (List.length (HK.take_replies t));
  Alcotest.(check (option string)) "applied everywhere" (Some "1")
    (Kv.find (HK.Replica.state t.replicas.(2)) "a")

let test_txn_op_count_guard () =
  (* A commit whose op count disagrees with what the leader recorded is
     aborted (protects against partial branches after a switch). *)
  let t = HK.create () in
  HK.elect t 0;
  HK.submit t (HK.req ~seq:1 ~rtype:(Txn_op 1)
                 ~payload:(Kv.encode_op (Kv.Put { key = "a"; value = "1" })) ());
  ignore (HK.take_replies t);
  HK.submit t (HK.req ~seq:2 ~rtype:(Txn_commit 1) ~payload:(commit_payload 3) ());
  HK.deliver_all t;
  (match HK.take_replies t with
  | [ r ] -> Alcotest.(check bool) "aborted" true (r.status = Txn_aborted)
  | _ -> Alcotest.fail "expected one reply");
  Alcotest.(check (option string)) "nothing applied" None
    (Kv.find (HK.Replica.state t.replicas.(0)) "a")

let test_txn_abort_unknown () =
  let t = HK.create () in
  HK.elect t 0;
  HK.submit t (HK.req ~seq:1 ~rtype:(Txn_commit 9) ~payload:(commit_payload 0) ());
  HK.deliver_all t;
  match HK.take_replies t with
  | [ r ] -> Alcotest.(check bool) "unknown txn aborted" true (r.status = Txn_aborted)
  | _ -> Alcotest.fail "expected one reply"

let test_txn_explicit_abort_discards_branch () =
  let t = HK.create () in
  HK.elect t 0;
  HK.submit t (HK.req ~seq:1 ~rtype:(Txn_op 1)
                 ~payload:(Kv.encode_op (Kv.Put { key = "x"; value = "v" })) ());
  ignore (HK.take_replies t);
  HK.submit t (HK.req ~seq:2 ~rtype:(Txn_abort 1) ~payload:"" ());
  (match HK.take_replies t with
  | [ r ] -> Alcotest.(check bool) "abort acked" true (r.status = Txn_aborted)
  | _ -> Alcotest.fail "expected abort ack");
  (* A commit after the abort is an unknown transaction. *)
  HK.submit t (HK.req ~seq:3 ~rtype:(Txn_commit 1) ~payload:(commit_payload 1) ());
  HK.deliver_all t;
  match HK.take_replies t with
  | [ r ] -> Alcotest.(check bool) "post-abort commit rejected" true (r.status = Txn_aborted)
  | _ -> Alcotest.fail "expected one reply"

let suite =
  [
    ( "election.engine",
      [
        Alcotest.test_case "dueling candidates" `Quick test_dueling_candidates;
        Alcotest.test_case "prepare retry idempotent" `Quick test_prepare_retry_idempotent;
        Alcotest.test_case "ballots strictly increase" `Quick test_ballot_strictly_increases;
        Alcotest.test_case "recovered leader defers (§3.6)" `Quick
          test_recovered_leader_defers_to_incumbent;
        Alcotest.test_case "followers stay followers" `Quick
          test_commit_alone_does_not_elect;
      ] );
    ( "txn.engine",
      [
        Alcotest.test_case "ops need no coordination (§3.5)" `Quick
          test_txn_ops_no_coordination;
        Alcotest.test_case "op-count guard" `Quick test_txn_op_count_guard;
        Alcotest.test_case "unknown txn aborts" `Quick test_txn_abort_unknown;
        Alcotest.test_case "explicit abort discards branch" `Quick
          test_txn_explicit_abort_discards_branch;
      ] );
  ]
