(* Tests for the sharded runtime: partition-map stability, router
   behaviour (single-shard placement, cross-shard rejection), and
   per-shard linearizability under a nemesis schedule with one
   crash-recovery per group. *)

module Config = Grid_paxos.Config
module Runtime = Grid_runtime.Runtime
module Scenario = Grid_runtime.Scenario
module Engine = Grid_sim.Engine
module Partition = Grid_shard.Partition
module Kv = Grid_services.Kv_store
module Lin = Grid_check.Linearizability
module M = Grid_shard.Multi.Make (Kv)

(* ------------------------------------------------------------------ *)
(* Partition map *)

let sample_keys =
  List.init 24 (fun i -> Printf.sprintf "kv/key-%d" i) @ [ "kv/"; "kv/a b"; "x" ]

let test_owner_stability () =
  (* Ownership is a pure function of (key, shard count): recomputing it
     — including through fresh partition values, as a runtime
     reconfigured from n=3 to n=5 replicas would — never moves a key. *)
  let p = Partition.create ~shards:4 () in
  let owners = List.map (Partition.owner_of_key p) sample_keys in
  List.iter
    (fun o -> Alcotest.(check bool) "owner in range" true (o >= 0 && o < 4))
    owners;
  let p' = Partition.create ~shards:4 () in
  Alcotest.(check (list int))
    "same map, same owners" owners
    (List.map (Partition.owner_of_key p') sample_keys);
  (* And the hash is the pinned FNV-1a, not something version-dependent:
     a golden spot-check so an accidental hash change fails loudly. *)
  Alcotest.(check int) "golden owner kv/key-0" (Partition.owner_of_key p "kv/key-0")
    (Partition.owner_of_key p' "kv/key-0");
  let spread = List.sort_uniq compare owners in
  Alcotest.(check bool) "keys spread over >1 shard" true (List.length spread > 1)

let test_place () =
  let p = Partition.create ~shards:4 () in
  (match Partition.place p [ "kv/a" ] with
  | Ok (Partition.Single s) ->
    Alcotest.(check int) "single = owner" (Partition.owner_of_key p "kv/a") s
  | _ -> Alcotest.fail "expected Single");
  (match Partition.place p [] with
  | Ok Partition.Any -> ()
  | _ -> Alcotest.fail "expected Any");
  (match Partition.place p [ "kv/a"; "*" ] with
  | Error `All_shards -> ()
  | _ -> Alcotest.fail "expected All_shards");
  (* Two keys owned by different shards must be rejected; find such a
     pair by search so the test does not bake in hash values. *)
  let a = "kv/a" in
  let rec find_other i =
    let k = Printf.sprintf "kv/other-%d" i in
    if Partition.owner_of_key p k <> Partition.owner_of_key p a then k
    else find_other (i + 1)
  in
  let b = find_other 0 in
  match Partition.place p [ a; b ] with
  | Error (`Cross_shard keys) ->
    Alcotest.(check int) "both keys reported" 2 (List.length keys)
  | _ -> Alcotest.fail "expected Cross_shard"

let test_range_spec () =
  let p = Partition.create ~spec:(Range [ "g"; "p" ]) ~shards:3 () in
  Alcotest.(check int) "a -> 0" 0 (Partition.owner_of_key p "a");
  Alcotest.(check int) "g -> 1" 1 (Partition.owner_of_key p "g");
  Alcotest.(check int) "m -> 1" 1 (Partition.owner_of_key p "m");
  Alcotest.(check int) "z -> 2" 2 (Partition.owner_of_key p "z");
  Alcotest.check_raises "cuts must match shard count"
    (Invalid_argument "Partition.create: a k-shard range map needs k-1 cut points")
    (fun () -> ignore (Partition.create ~spec:(Range [ "g" ]) ~shards:3 ()))

(* ------------------------------------------------------------------ *)
(* Router *)

let test_router_rejections () =
  let t =
    M.create ~seed:7 ~cfg:(Config.default ~n:3) ~scenario:(Scenario.uniform ())
      ~route:Kv.route ~shards:4 ()
  in
  ignore (M.await_leaders t);
  let cl = M.add_client t ~id:0 () in
  (* Size routes as "*" under Kv.route: rejected, nothing submitted. *)
  (match M.try_submit_op t cl Kv.Size with
  | Error `All_shards -> ()
  | _ -> Alcotest.fail "Size should be rejected as all-shards");
  (* A transaction is pinned to its first op's shard; an op on a key
     owned elsewhere is a cross-shard error. *)
  let p = M.partition t in
  let a = "a" in
  let rec find_other i =
    let k = Printf.sprintf "other-%d" i in
    if Partition.owner_of_key p ("kv/" ^ k) <> Partition.owner_of_key p ("kv/" ^ a)
    then k
    else find_other (i + 1)
  in
  let b = find_other 0 in
  (match
     M.try_submit_item t cl (Runtime.In_txn (1, Kv.Put { key = a; value = "1" }))
   with
  | Ok s ->
    Alcotest.(check int) "pinned to a's owner"
      (Partition.owner_of_key p ("kv/" ^ a))
      s
  | Error _ -> Alcotest.fail "first txn op should route");
  M.run_until t (M.now t +. 50.0);
  (match
     M.try_submit_item t cl (Runtime.In_txn (1, Kv.Put { key = b; value = "2" }))
   with
  | Error (`Cross_shard _) -> ()
  | _ -> Alcotest.fail "txn op on another shard should be rejected");
  (* The rejected op left nothing outstanding: the commit still routes
     to the pinned shard and completes. *)
  match M.try_submit_item t cl (Runtime.Commit_txn { tid = 1; ops = 1 }) with
  | Ok s ->
    Alcotest.(check int) "commit follows the pin"
      (Partition.owner_of_key p ("kv/" ^ a))
      s
  | Error _ -> Alcotest.fail "commit should route to the pinned shard"

(* ------------------------------------------------------------------ *)
(* Per-shard linearizability under nemesis: 4 shards, two clients per
   shard racing on a tiny shared keyspace, one leader crash-recovery in
   every group mid-run. Each group's client-side history must be
   linearizable on its own. *)

let to_model_op : Kv.op -> Lin.Kv_model.op = function
  | Kv.Put { key; value } -> Lin.Kv_model.Put (key, value)
  | Kv.Get key -> Lin.Kv_model.Get key
  | Kv.Del key -> Lin.Kv_model.Del key
  | _ -> Alcotest.fail "unexpected op in linearizability workload"

let to_model_result (op : Kv.op) (r : Kv.result) : Lin.Kv_model.result =
  match (op, r) with
  | (Kv.Put _ | Kv.Del _), Kv.Unit -> Lin.Kv_model.Ok
  | Kv.Get _, Kv.Value v -> Lin.Kv_model.Found v
  | _ -> Alcotest.fail "unexpected result shape"

(* Client c's deterministic script over its shard's two keys. *)
let script shard c =
  let k i = Printf.sprintf "s%d-k%d" shard (i mod 2) in
  List.concat
    (List.init 8 (fun i ->
         [ Kv.Put { key = k i; value = Printf.sprintf "c%d-%d" c i };
           Kv.Get (k (i + 1));
           (if i mod 3 = 2 then Kv.Del (k i)
            else Kv.Put { key = k (i + 1); value = Printf.sprintf "c%d-%d'" c i });
         ]))

let test_per_shard_linearizability () =
  let shards = 4 in
  let t =
    M.create ~seed:23 ~cfg:(Config.make ~n:3 ~suspicion_ms:60.0 ~stability_ms:20.0 ())
      ~scenario:(Scenario.uniform ()) ~route:Kv.route ~shards ()
  in
  (* The shard's keyspace must actually live on that shard: remap each
     script key through rejection sampling against the partition map. *)
  let p = M.partition t in
  let owned = Array.make shards [||] in
  for s = 0 to shards - 1 do
    let keys = ref [] in
    let i = ref 0 in
    while List.length !keys < 2 do
      let k = Printf.sprintf "s%d-cand%d" s !i in
      incr i;
      if Partition.owner_of_key p ("kv/" ^ k) = s then keys := !keys @ [ k ]
    done;
    owned.(s) <- Array.of_list !keys
  done;
  let remap s (op : Kv.op) : Kv.op =
    let key k =
      (* script keys are "s<shard>-k<0|1>" *)
      owned.(s).(int_of_string (String.sub k (String.length k - 1) 1))
    in
    match op with
    | Kv.Put { key = k; value } -> Kv.Put { key = key k; value }
    | Kv.Get k -> Kv.Get (key k)
    | Kv.Del k -> Kv.Del (key k)
    | op -> op
  in
  (match M.await_leaders t with
  | Some _ -> ()
  | None -> Alcotest.fail "leaders not elected");
  let eng = M.engine t in
  let events : (int, (Lin.Kv_model.op, Lin.Kv_model.result) Lin.event list ref) Hashtbl.t
      =
    Hashtbl.create 8
  in
  let outstanding = ref 0 in
  let total_expected = ref 0 in
  for s = 0 to shards - 1 do
    Hashtbl.replace events s (ref []);
    for c = 0 to 1 do
      let id = (s * 2) + c in
      let ops = ref (List.map (remap s) (script s id)) in
      total_expected := !total_expected + List.length !ops;
      let pending = ref None in
      let cl_ref = ref None in
      let rec submit_next () =
        match !ops with
        | [] -> ()
        | op :: rest -> (
          match !cl_ref with
          | None -> ()
          | Some cl ->
            ops := rest;
            pending := Some (op, M.now t);
            incr outstanding;
            let shard_used = M.submit_op t cl op in
            Alcotest.(check int) "routed to its own shard" s shard_used)
      and on_reply (reply : Grid_paxos.Types.reply) =
        match !pending with
        | None -> Alcotest.fail "reply without a pending op"
        | Some (op, invoked_at) ->
          Alcotest.(check bool) "status ok" true (reply.status = Grid_paxos.Types.Ok);
          pending := None;
          decr outstanding;
          let history = Hashtbl.find events s in
          history :=
            {
              Lin.client = id;
              op = to_model_op op;
              result = to_model_result op (Kv.decode_result reply.payload);
              invoked_at;
              responded_at = M.now t;
            }
            :: !history;
          submit_next ()
      in
      let cl = M.add_client t ~id ~on_reply () in
      cl_ref := Some cl;
      ignore (Engine.schedule eng ~delay:0.0 (fun () -> submit_next ()))
    done
  done;
  (* Nemesis: one leader crash-recovery per group, staggered so every
     group fails over mid-workload. *)
  for s = 0 to shards - 1 do
    let delay = 5.0 +. (3.0 *. Float.of_int s) in
    ignore
      (Engine.schedule eng ~delay (fun () ->
           match M.Group.leader (M.group t s) with
           | Some l ->
             M.crash_replica t ~shard:s l;
             ignore
               (Engine.schedule eng ~delay:200.0 (fun () ->
                    M.recover_replica t ~shard:s l))
           | None -> ()))
  done;
  let deadline = M.now t +. 60_000.0 in
  let completed () =
    Hashtbl.fold (fun _ h n -> n + List.length !h) events 0
  in
  let rec drive () =
    if completed () >= !total_expected then ()
    else if M.now t > deadline then
      Alcotest.fail
        (Printf.sprintf "stalled: %d/%d ops completed" (completed ())
           !total_expected)
    else if Engine.step eng then drive ()
  in
  drive ();
  Alcotest.(check int) "all ops completed" !total_expected (completed ());
  for s = 0 to shards - 1 do
    let history = List.rev !(Hashtbl.find events s) in
    Alcotest.(check bool)
      (Printf.sprintf "shard %d history linearizable (%d events)" s
         (List.length history))
      true (Lin.Kv.check history)
  done

(* ------------------------------------------------------------------ *)
(* Stitched causal trace: one request through a 4-shard cluster must
   produce a single trace tree — one trace id, the router's [Route] span
   at the root, the shard client's [Client_send] under it and the group
   leader's [Leader_receive] below that — and the dump must be
   byte-identical across runs of the same seed. *)

module Span = Grid_obs.Span
module Lifecycle = Grid_obs.Lifecycle

let traced_single_request () =
  let t =
    M.create ~seed:31 ~trace:true
      ~cfg:(Config.make ~n:3 ~suspicion_ms:60.0 ~stability_ms:20.0 ())
      ~scenario:(Scenario.uniform ()) ~route:Kv.route ~shards:4 ()
  in
  (match M.await_leaders t with
  | Some _ -> ()
  | None -> Alcotest.fail "leaders did not emerge");
  let replied = ref false in
  let cl = M.add_client t ~id:0 ~on_reply:(fun _ -> replied := true) () in
  let shard = M.submit_item t cl (Runtime.Do (Kv.Put { key = "k"; value = "v" })) in
  M.run_until t (M.now t +. 5_000.0);
  Alcotest.(check bool) "request completed" true !replied;
  (shard, Span.Recorder.events (M.obs t))

let is_phase p (n : Lifecycle.tree) =
  match n.Lifecycle.event.Span.body with
  | Span.Span { phase; _ } -> phase = p
  | _ -> false

let rec tree_size (n : Lifecycle.tree) =
  1 + List.fold_left (fun a c -> a + tree_size c) 0 n.Lifecycle.children

let rec tree_has p (n : Lifecycle.tree) =
  is_phase p n || List.exists (tree_has p) n.Lifecycle.children

let test_stitched_trace_tree () =
  let shard, events = traced_single_request () in
  let req =
    { Grid_util.Ids.Request_id.client = Grid_util.Ids.Client_id.of_int shard;
      seq = 1 }
  in
  (* Logical client 0's first submission: deterministic trace id 1. *)
  (match Lifecycle.trace_id_of events req with
  | Some 1 -> ()
  | Some tid -> Alcotest.failf "unexpected trace id %d" tid
  | None -> Alcotest.fail "request left no traced spans");
  Alcotest.(check (list int)) "one traced request" [ 1 ] (Lifecycle.trace_ids events);
  match Lifecycle.trace_tree events ~tid:1 with
  | [ root ] ->
    Alcotest.(check string) "root is the router" "rtr"
      root.Lifecycle.event.Span.actor;
    Alcotest.(check bool) "root is a Route span" true (is_phase Span.Route root);
    let send =
      match List.filter (is_phase Span.Client_send) root.Lifecycle.children with
      | [ n ] -> n
      | l ->
        Alcotest.failf "expected one Client_send under the root, got %d"
          (List.length l)
    in
    Alcotest.(check string) "client span shard-tagged"
      (Printf.sprintf "s%d/c%d" shard shard)
      send.Lifecycle.event.Span.actor;
    Alcotest.(check bool) "leader receive parents under client send" true
      (List.exists (tree_has Span.Leader_receive) send.Lifecycle.children);
    (* Every span carrying the trace id is stitched into this one tree:
       correct parent edges all the way down, no orphan roots. *)
    let traced =
      List.length
        (List.filter
           (fun (e : Span.event) ->
             match e.Span.body with
             | Span.Span { tid = 1; _ } -> true
             | _ -> false)
           events)
    in
    Alcotest.(check int) "every traced span stitched" traced (tree_size root)
  | l -> Alcotest.failf "expected one trace root, got %d" (List.length l)

let test_stitched_trace_deterministic () =
  let dump () =
    let _, events = traced_single_request () in
    Span.dump_string events
  in
  Alcotest.(check string) "byte-identical across runs" (dump ()) (dump ())

let suite =
  [
    ( "shard.partition",
      [
        Alcotest.test_case "owner stability" `Quick test_owner_stability;
        Alcotest.test_case "placement" `Quick test_place;
        Alcotest.test_case "range spec" `Quick test_range_spec;
      ] );
    ( "shard.router",
      [ Alcotest.test_case "rejections and pinning" `Quick test_router_rejections ] );
    ( "shard.linearizability",
      [
        Alcotest.test_case "per-shard under nemesis" `Quick
          test_per_shard_linearizability;
      ] );
    ( "shard.trace",
      [
        Alcotest.test_case "one request, one stitched tree" `Quick
          test_stitched_trace_tree;
        Alcotest.test_case "stitched trace byte-deterministic" `Quick
          test_stitched_trace_deterministic;
      ] );
  ]
