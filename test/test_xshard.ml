(* Cross-shard 2PC tests (DESIGN.md §16): deterministic engine-level
   scripts for the abort/recovery paths the stress tier only samples —
   participant leader crash between PREPARE and COMMIT, coordinator
   abandonment after a partial PREPARE, duplicate COMMIT delivery — plus
   the router pin-table regression and unit tests for the cross-shard
   history checker. *)

module Config = Grid_paxos.Config
module Runtime = Grid_runtime.Runtime
module Scenario = Grid_runtime.Scenario
module Partition = Grid_shard.Partition
module Kv = Grid_services.Kv_store
module Ids = Grid_util.Ids
module Xshard = Grid_check.Xshard
module M = Grid_shard.Multi.Make (Kv)
open Grid_paxos.Types

let mk_cluster ?(seed = 5) ?(shards = 3) () =
  let t =
    M.create ~seed
      ~cfg:(Config.make ~n:3 ~record_history:true ~suspicion_ms:60.0 ~stability_ms:20.0 ())
      ~scenario:(Scenario.uniform ()) ~route:Kv.route ~shards ()
  in
  (match M.await_leaders t with
  | Some _ -> ()
  | None -> Alcotest.fail "leaders not elected");
  t

(* A key owned by shard [s], found by rejection sampling so the test
   does not bake in hash values. *)
let owned_key t s =
  let p = M.partition t in
  let rec go i =
    let k = Printf.sprintf "xs%d-%d" s i in
    if Partition.owner_of_key p ("kv/" ^ k) = s then k else go (i + 1)
  in
  go 0

let settle ?(ms = 500.0) t = M.run_until t (M.now t +. ms)

let wait t cond =
  let deadline = M.now t +. 10_000.0 in
  while (not (cond ())) && M.now t < deadline do
    M.run_until t (M.now t +. 10.0)
  done;
  if not (cond ()) then Alcotest.fail "timed out waiting for condition"

let leader_of t g =
  match M.Group.leader (M.group t g) with
  | Some l -> M.Group.replica (M.group t g) l
  | None -> Alcotest.fail (Printf.sprintf "group %d has no leader" g)

let value_at t g key =
  Kv.find (M.Group.R.state (leader_of t g)) key

let submit_ok what = function
  | `Submitted -> ()
  | `Busy -> Alcotest.fail (what ^ ": handle busy")

(* ------------------------------------------------------------------ *)
(* Happy path: a transaction over two groups commits atomically. *)

let test_cross_commit () =
  let t = mk_cluster () in
  let cl = M.add_client t ~id:0 () in
  let ka = owned_key t 0 and kb = owned_key t 1 in
  let result = ref None in
  let tid =
    M.submit_cross_txn t cl
      ~ops:[ Kv.Put { key = ka; value = "A" }; Kv.Put { key = kb; value = "B" } ]
      ~on_done:(fun r -> result := Some r)
  in
  Alcotest.(check bool) "cross tid namespace" true (M.is_cross_tid tid);
  wait t (fun () -> !result <> None);
  (match !result with
  | Some M.X_committed -> ()
  | r ->
    Alcotest.failf "expected commit, got %s"
      (match r with
      | Some r -> Format.asprintf "%a" M.pp_xresult r
      | None -> "nothing"));
  settle t;
  Alcotest.(check (option string)) "shard 0 applied its op" (Some "A")
    (value_at t 0 ka);
  Alcotest.(check (option string)) "shard 1 applied its op" (Some "B")
    (value_at t 1 kb);
  for g = 0 to 1 do
    Alcotest.(check (option bool))
      (Printf.sprintf "group %d tombstone says committed" g)
      (Some true)
      (M.Group.R.txn_outcome (leader_of t g) tid);
    Alcotest.(check (list int))
      (Printf.sprintf "group %d holds no prepares" g)
      []
      (M.Group.R.prepared_txns (leader_of t g))
  done

(* ------------------------------------------------------------------ *)
(* Participant leader crashes between PREPARE and COMMIT: the vote is a
   committed consensus instance, so the failover leader inherits it and
   the commit still lands. *)

let test_participant_crash_between_prepare_and_commit () =
  let t = mk_cluster () in
  let cl = M.add_client t ~id:0 () in
  let ka = owned_key t 0 and kb = owned_key t 1 in
  let tid = M.alloc_cross_tid t in
  let replies = ref 0 in
  M.set_on_reply t cl (fun r ->
      Alcotest.(check bool) "step replied Ok" true (r.status = Ok);
      incr replies);
  submit_ok "op a"
    (M.submit_txn_op t cl ~shard:0 ~tid (Kv.Put { key = ka; value = "A" }));
  submit_ok "op b"
    (M.submit_txn_op t cl ~shard:1 ~tid (Kv.Put { key = kb; value = "B" }));
  wait t (fun () -> !replies = 2);
  submit_ok "prepare 0" (M.submit_prepare t cl ~shard:0 ~tid ~ops:1);
  submit_ok "prepare 1" (M.submit_prepare t cl ~shard:1 ~tid ~ops:1);
  wait t (fun () -> !replies = 4);
  (* Both groups voted YES. Kill group 1's leader before any decision. *)
  let old_leader =
    match M.Group.leader (M.group t 1) with
    | Some l -> l
    | None -> Alcotest.fail "group 1 lost its leader early"
  in
  M.crash_replica t ~shard:1 old_leader;
  wait t (fun () ->
      match M.Group.leader (M.group t 1) with
      | Some l -> l <> old_leader
      | None -> false);
  (* The failover leader learned the vote from the group's log. *)
  Alcotest.(check (list int)) "failover leader inherits the prepare" [ tid ]
    (M.Group.R.prepared_txns (leader_of t 1));
  (* Drive the decision: home first, then the surviving group. *)
  submit_ok "commit home" (M.submit_decision t cl ~shard:0 ~tid ~commit:true);
  wait t (fun () -> !replies = 5);
  submit_ok "commit 1" (M.submit_decision t cl ~shard:1 ~tid ~commit:true);
  wait t (fun () -> !replies = 6);
  settle t;
  Alcotest.(check (option string)) "shard 0 applied" (Some "A") (value_at t 0 ka);
  Alcotest.(check (option string)) "shard 1 applied across failover" (Some "B")
    (value_at t 1 kb);
  Alcotest.(check (option bool)) "failover leader logged the commit" (Some true)
    (M.Group.R.txn_outcome (leader_of t 1) tid);
  M.recover_replica t ~shard:1 old_leader;
  settle t;
  Alcotest.(check (list int)) "no prepares left in group 1" []
    (M.Group.R.prepared_txns (leader_of t 1))

(* ------------------------------------------------------------------ *)
(* Coordinator abandons the transaction after a partial prepare: the
   prepared group holds its locks (a conflicting write must wait), and
   presumed-abort recovery releases everything. *)

let test_coordinator_crash_partial_prepare () =
  let t = mk_cluster () in
  let cl = M.add_client t ~id:0 () in
  let ka = owned_key t 0 and kb = owned_key t 1 in
  let tid = M.alloc_cross_tid t in
  let replies = ref 0 in
  M.set_on_reply t cl (fun _ -> incr replies);
  submit_ok "op a"
    (M.submit_txn_op t cl ~shard:0 ~tid (Kv.Put { key = ka; value = "A" }));
  submit_ok "op b"
    (M.submit_txn_op t cl ~shard:1 ~tid (Kv.Put { key = kb; value = "B" }));
  wait t (fun () -> !replies = 2);
  (* Prepare only at group 1 (not the home group), then go silent. *)
  submit_ok "prepare 1" (M.submit_prepare t cl ~shard:1 ~tid ~ops:1);
  wait t (fun () -> !replies = 3);
  Alcotest.(check (list int)) "group 1 voted and holds the lock" [ tid ]
    (M.Group.R.prepared_txns (leader_of t 1));
  (* A plain write on the locked key from another client must wait for
     the decision, not race it. *)
  let wcl = M.add_client t ~id:1 () in
  let wreply = ref None in
  M.set_on_reply t wcl (fun r -> wreply := Some r);
  (match M.try_submit_op t wcl (Kv.Put { key = kb; value = "W" }) with
  | Ok s -> Alcotest.(check int) "write routed to the locked group" 1 s
  | Error e -> Alcotest.failf "write: %a" M.pp_submit_error e);
  settle t ~ms:300.0;
  Alcotest.(check bool) "write blocked behind the prepared branch" true
    (!wreply = None);
  (* Presumed-abort recovery from a fresh client. *)
  let rcl = M.add_client t ~id:2 () in
  let rresult = ref None in
  M.recover_cross_txn t rcl ~tid ~shards:[ 0; 1 ] ~on_done:(fun r ->
      rresult := Some r);
  wait t (fun () -> !rresult <> None);
  (match !rresult with
  | Some M.X_aborted -> ()
  | _ -> Alcotest.fail "recovery must abort an undecided transaction");
  wait t (fun () -> !wreply <> None);
  settle t;
  Alcotest.(check (option string)) "blocked write ran after the abort"
    (Some "W") (value_at t 1 kb);
  Alcotest.(check (option string)) "branch never committed on shard 0" None
    (value_at t 0 ka);
  Alcotest.(check (option bool)) "group 1 logged the abort" (Some false)
    (M.Group.R.txn_outcome (leader_of t 1) tid);
  Alcotest.(check (list int)) "locks released" []
    (M.Group.R.prepared_txns (leader_of t 1))

(* ------------------------------------------------------------------ *)
(* Duplicate COMMIT delivery: the decision tombstone makes the second
   commit a no-op Ok instead of a double apply. *)

let test_duplicate_commit_delivery () =
  let t = mk_cluster () in
  let cl = M.add_client t ~id:0 () in
  let ka = owned_key t 0 and kb = owned_key t 1 in
  let tid = M.alloc_cross_tid t in
  let replies = ref 0 in
  M.set_on_reply t cl (fun _ -> incr replies);
  submit_ok "op a"
    (M.submit_txn_op t cl ~shard:0 ~tid (Kv.Append { key = ka; value = "+a" }));
  submit_ok "op b"
    (M.submit_txn_op t cl ~shard:1 ~tid (Kv.Append { key = kb; value = "+b" }));
  wait t (fun () -> !replies = 2);
  submit_ok "prepare 0" (M.submit_prepare t cl ~shard:0 ~tid ~ops:1);
  submit_ok "prepare 1" (M.submit_prepare t cl ~shard:1 ~tid ~ops:1);
  wait t (fun () -> !replies = 4);
  submit_ok "commit 0" (M.submit_decision t cl ~shard:0 ~tid ~commit:true);
  submit_ok "commit 1" (M.submit_decision t cl ~shard:1 ~tid ~commit:true);
  wait t (fun () -> !replies = 6);
  (* A second client re-delivers the COMMIT to both groups. *)
  let dcl = M.add_client t ~id:1 () in
  let dups = ref [] in
  M.set_on_reply t dcl (fun r -> dups := r.status :: !dups);
  submit_ok "dup commit 0" (M.submit_decision t dcl ~shard:0 ~tid ~commit:true);
  submit_ok "dup commit 1" (M.submit_decision t dcl ~shard:1 ~tid ~commit:true);
  wait t (fun () -> List.length !dups = 2);
  List.iter
    (fun s -> Alcotest.(check bool) "duplicate commit answered Ok" true (s = Ok))
    !dups;
  settle t;
  (* Appends applied exactly once despite the duplicate decision. *)
  Alcotest.(check (option string)) "shard 0 applied once" (Some "+a")
    (value_at t 0 ka);
  Alcotest.(check (option string)) "shard 1 applied once" (Some "+b")
    (value_at t 1 kb);
  (* And the committed histories pass the cross-shard checker — in
     particular no Duplicate_decision. *)
  let longest g =
    let gt = M.group t g in
    let best = ref [] in
    for i = 0 to 2 do
      let h = M.Group.R.committed_updates (M.Group.replica gt i) in
      if List.length h > List.length !best then best := h
    done;
    !best
  in
  let footprint_of payload =
    match Kv.decode_op payload with
    | op -> Kv.footprint op
    | exception _ -> [ "*" ]
  in
  Alcotest.(check int) "checker finds no violations" 0
    (List.length
       (Xshard.check ~require_resolved:true ~is_cross_tid:M.is_cross_tid
          ~footprint_of
          (Array.init (M.shards t) longest)))

(* ------------------------------------------------------------------ *)
(* Router pin-table regression: 10^5 transactions through one logical
   client leave no pins behind, and the table never grows past the
   transactions genuinely open. *)

let test_pin_table_bounded () =
  let t = mk_cluster ~seed:11 ~shards:2 () in
  let cl = M.add_client t ~id:0 () in
  let key = owned_key t 0 in
  let total = 100_000 in
  let max_pins = ref 0 in
  let finished = ref 0 in
  let cur = ref 0 in
  let phase = ref `Op in
  let submit what it =
    match M.try_submit_item t cl it with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "%s: %a" what M.pp_submit_error e
  in
  let start_txn () =
    incr cur;
    phase := `Op;
    submit "txn op" (Runtime.In_txn (!cur, Kv.Put { key; value = "v" }))
  in
  M.set_on_reply t cl (fun _ ->
      match !phase with
      | `Op ->
        phase := `Fin;
        if !cur mod 1000 = 0 then
          submit "commit" (Runtime.Commit_txn { tid = !cur; ops = 1 })
        else submit "abort" (Runtime.Abort_txn !cur)
      | `Fin ->
        incr finished;
        if M.pinned_txns cl > !max_pins then max_pins := M.pinned_txns cl;
        if !cur < total then start_txn ());
  start_txn ();
  let deadline = M.now t +. 5_000_000.0 in
  while !finished < total && M.now t < deadline do
    M.run_until t (M.now t +. 1_000.0)
  done;
  Alcotest.(check int) "all transactions finished" total !finished;
  Alcotest.(check int) "no pins leaked" 0 (M.pinned_txns cl);
  Alcotest.(check bool)
    (Printf.sprintf "pin table stayed bounded (max %d)" !max_pins)
    true (!max_pins <= 1)

(* ------------------------------------------------------------------ *)
(* Checker unit tests: hand-built histories must trip each violation. *)

let creq ~seq rtype payload =
  {
    id = Ids.Request_id.make ~client:(Ids.Client_id.of_int 1) ~seq;
    rtype;
    payload;
    trace = no_trace;
  }

let tid_a = 1_000_000_001
let tid_b = 1_000_000_002
let is_cross tid = tid >= 1_000_000_000
let fp_of payload = [ payload ]

let xcheck ?require_resolved histories =
  Xshard.check ?require_resolved ~is_cross_tid:is_cross ~footprint_of:fp_of
    histories

let test_checker_mixed_decision () =
  let histories =
    [|
      [ (1, [ creq ~seq:1 (Txn_commit tid_a) "" ], "") ];
      [ (1, [ creq ~seq:2 (Txn_abort tid_a) "" ], "") ];
    |]
  in
  match xcheck histories with
  | [ Xshard.Mixed_decision { tid; committed_in; aborted_in } ] ->
    Alcotest.(check int) "tid" tid_a tid;
    Alcotest.(check (list int)) "committed groups" [ 0 ] committed_in;
    Alcotest.(check (list int)) "aborted groups" [ 1 ] aborted_in
  | vs ->
    Alcotest.failf "expected one mixed-decision violation, got %d"
      (List.length vs)

let test_checker_duplicate_decision () =
  let histories =
    [|
      [
        (1, [ creq ~seq:1 (Txn_commit tid_a) "" ], "");
        (2, [ creq ~seq:2 (Txn_commit tid_a) "" ], "");
      ];
    |]
  in
  match xcheck histories with
  | [ Xshard.Duplicate_decision { tid; group; instances } ] ->
    Alcotest.(check int) "tid" tid_a tid;
    Alcotest.(check int) "group" 0 group;
    Alcotest.(check int) "two instances" 2 (List.length instances)
  | vs ->
    Alcotest.failf "expected one duplicate-decision violation, got %d"
      (List.length vs)

let test_checker_unresolved_prepare () =
  let histories = [| [ (1, [ creq ~seq:1 (Txn_prepare tid_a) "" ], "") ] |] in
  Alcotest.(check int) "silent unless resolution is required" 0
    (List.length (xcheck histories));
  match xcheck ~require_resolved:true histories with
  | [ Xshard.Unresolved_prepare { tid; group; instance } ] ->
    Alcotest.(check int) "tid" tid_a tid;
    Alcotest.(check int) "group" 0 group;
    Alcotest.(check int) "instance" 1 instance
  | vs ->
    Alcotest.failf "expected one unresolved-prepare violation, got %d"
      (List.length vs)

let test_checker_serialization_cycle () =
  (* Group 0 decides A before B, group 1 decides B before A, with
     conflicting footprints in each group: not serializable. *)
  let commit tid ~seq ~key =
    [ creq ~seq (Txn_op tid) key; creq ~seq:(seq + 1) (Txn_commit tid) "" ]
  in
  let histories =
    [|
      [
        (1, commit tid_a ~seq:1 ~key:"k0", "");
        (2, commit tid_b ~seq:3 ~key:"k0", "");
      ];
      [
        (1, commit tid_b ~seq:5 ~key:"k1", "");
        (2, commit tid_a ~seq:7 ~key:"k1", "");
      ];
    |]
  in
  (match xcheck histories with
  | [ Xshard.Cycle { tids } ] ->
    Alcotest.(check bool) "cycle covers both txns" true
      (List.sort Int.compare tids = [ tid_a; tid_b ])
  | vs -> Alcotest.failf "expected one cycle violation, got %d" (List.length vs));
  (* Same decisions in the same order are serializable. *)
  let agreeing =
    [|
      [
        (1, commit tid_a ~seq:1 ~key:"k0", "");
        (2, commit tid_b ~seq:3 ~key:"k0", "");
      ];
      [
        (1, commit tid_a ~seq:5 ~key:"k1", "");
        (2, commit tid_b ~seq:7 ~key:"k1", "");
      ];
    |]
  in
  Alcotest.(check int) "aligned orders pass" 0 (List.length (xcheck agreeing))

let suite =
  [
    ( "xshard.2pc",
      [
        Alcotest.test_case "cross-shard commit is atomic" `Quick test_cross_commit;
        Alcotest.test_case "participant leader crash between prepare and commit"
          `Quick test_participant_crash_between_prepare_and_commit;
        Alcotest.test_case "coordinator crash after partial prepare" `Quick
          test_coordinator_crash_partial_prepare;
        Alcotest.test_case "duplicate commit delivery is idempotent" `Quick
          test_duplicate_commit_delivery;
        Alcotest.test_case "router pin table bounded over 10^5 txns" `Slow
          test_pin_table_bounded;
      ] );
    ( "xshard.checker",
      [
        Alcotest.test_case "mixed decision" `Quick test_checker_mixed_decision;
        Alcotest.test_case "duplicate decision" `Quick
          test_checker_duplicate_decision;
        Alcotest.test_case "unresolved prepare" `Quick
          test_checker_unresolved_prepare;
        Alcotest.test_case "serialization cycle" `Quick
          test_checker_serialization_cycle;
      ] );
  ]
