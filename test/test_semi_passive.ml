(* Tests for the semi-passive replication baseline (§5 related work):
   failure-free runs, coordinator rotation on suspicion, the ◇S locking
   rule, and randomized-schedule agreement. *)

module SP = Grid_paxos.Semi_passive.Make (Grid_services.Counter)
module Counter = Grid_services.Counter
module Ids = Grid_util.Ids
module Rng = Grid_util.Rng
open Grid_paxos.Types

(* A hand-driven harness in the style of Engine_harness, for the
   semi-passive engine. *)
module H = struct
  type t = {
    replicas : SP.t array;
    mutable pending : (int * int * msg) list;
    mutable timers : (int * timer) list;
    mutable replies : reply list;
    mutable now : float;
    mutable down : bool array;
  }

  let create ?(n = 3) () =
    let cfg = Grid_paxos.Config.make ~n ~record_history:true () in
    let replicas = Array.init n (fun i -> SP.create ~cfg ~id:i ~seed:(50 + i) ()) in
    {
      replicas;
      pending = [];
      timers = [];
      replies = [];
      now = 0.0;
      down = Array.make n false;
    }

  let absorb t i actions =
    List.iter
      (function
        | Send { dst; msg } ->
          if node_is_client dst then begin
            match msg with Reply_msg r -> t.replies <- r :: t.replies | _ -> ()
          end
          else t.pending <- t.pending @ [ (i, dst, msg) ]
        | After { timer; _ } -> t.timers <- t.timers @ [ (i, timer) ]
        | Note _ -> ())
      actions

  let feed t i input =
    if not t.down.(i) then absorb t i (SP.handle t.replicas.(i) ~now:t.now input)

  let deliver ?(filter = fun _ _ _ -> true) t =
    let rec split acc = function
      | [] -> None
      | ((src, dst, msg) as m) :: rest ->
        if filter src dst msg && not t.down.(dst) then
          Some (m, List.rev_append acc rest)
        else if t.down.(dst) then split acc rest (* dropped *)
        else split (m :: acc) rest
    in
    match split [] t.pending with
    | None -> false
    | Some ((src, dst, msg), rest) ->
      t.pending <- rest;
      feed t dst (Receive { src; msg });
      true

  let deliver_all ?filter t =
    let guard = ref 100_000 in
    while deliver ?filter t && !guard > 0 do
      decr guard
    done

  let fire t i want =
    let rec split acc = function
      | [] -> None
      | ((j, timer) as e) :: rest ->
        if j = i && want timer then Some (timer, List.rev_append acc rest)
        else split (e :: acc) rest
    in
    match split [] t.timers with
    | None -> false
    | Some (timer, rest) ->
      t.timers <- rest;
      feed t i (Timer timer);
      true

  let submit t ?(client = 1) ~seq op =
    let r : request =
      {
        id = Ids.Request_id.make ~client:(Ids.Client_id.of_int client) ~seq;
        rtype = Write;
        payload = Counter.encode_op op;
        trace = no_trace;
      }
    in
    Array.iteri (fun i _ -> feed t i (Receive { src = client_node r.id.client; msg = Client_req r })) t.replicas

  let take_replies t =
    let r = List.rev t.replies in
    t.replies <- [];
    r
end

let test_failure_free_run () =
  let t = H.create () in
  for seq = 1 to 5 do
    H.submit t ~seq (Counter.Add seq);
    H.deliver_all t
  done;
  Alcotest.(check int) "five replies" 5 (List.length (H.take_replies t));
  for i = 0 to 2 do
    Alcotest.(check int) (Printf.sprintf "replica %d decided all" i) 5
      (SP.decided_count t.replicas.(i));
    Alcotest.(check int) (Printf.sprintf "replica %d state" i) 15
      (SP.state t.replicas.(i))
  done;
  let histories = Array.map SP.committed_updates t.replicas in
  Alcotest.(check int) "agreement" 0
    (List.length (Grid_check.Agreement.check histories))

let test_message_pattern () =
  (* Failure-free: propose (2) + acks (2) + decide (2) + 1 reply per
     request, like the basic protocol's accept round. *)
  let t = H.create () in
  H.submit t ~seq:1 (Counter.Add 1);
  let proposes = List.filter (fun (_, _, m) -> msg_kind m = "sp_propose") t.pending in
  Alcotest.(check int) "propose broadcast" 2 (List.length proposes);
  H.deliver_all t;
  Alcotest.(check int) "one reply" 1 (List.length (H.take_replies t))

let test_coordinator_rotation () =
  (* The round-0 coordinator (replica 0) is down: followers time out,
     report estimates to the round-1 coordinator (replica 1), which
     executes the request lazily and decides. *)
  let t = H.create () in
  t.down.(0) <- true;
  H.submit t ~seq:1 (Counter.Add 7);
  (* No progress without timeouts: *)
  H.deliver_all t;
  Alcotest.(check int) "no reply while r0 silent" 0 (List.length (H.take_replies t));
  (* Fire the round-0 suspicion timeouts on the two live replicas. *)
  t.now <- t.now +. 500.0;
  ignore (H.fire t 1 (function Sp_round_timeout (_, 0) -> true | _ -> false));
  ignore (H.fire t 2 (function Sp_round_timeout (_, 0) -> true | _ -> false));
  H.deliver_all t;
  (match H.take_replies t with
  | [ r ] ->
    Alcotest.(check int) "round-1 coordinator executed and replied" 7
      (Counter.decode_result r.payload)
  | l -> Alcotest.fail (Printf.sprintf "expected one reply, got %d" (List.length l)));
  Alcotest.(check int) "r1 state" 7 (SP.state t.replicas.(1));
  Alcotest.(check int) "r2 state" 7 (SP.state t.replicas.(2))

let test_locking_rule () =
  (* ◇S safety: replica 1 acked the round-0 proposal (locking it). When
     round 1 runs, its coordinator must re-propose the LOCKED value, not
     execute afresh — even though its own counter execution would produce
     the same op here, the decided proposal must be the identical tuple. *)
  let t = H.create () in
  H.submit t ~seq:1 (Counter.Add 3);
  (* Deliver r0's proposal to r1 only; drop the one to r2 and all acks. *)
  ignore (H.deliver ~filter:(fun src dst m -> src = 0 && dst = 1 && msg_kind m = "sp_propose") t);
  t.pending <- [];
  (* r0 now "crashes". Rounds rotate. *)
  t.down.(0) <- true;
  t.now <- t.now +. 500.0;
  ignore (H.fire t 1 (function Sp_round_timeout (_, 0) -> true | _ -> false));
  ignore (H.fire t 2 (function Sp_round_timeout (_, 0) -> true | _ -> false));
  H.deliver_all t;
  (* Decided value must be r0's original execution: replica states match
     r0's proposal (counter 3), and exactly one reply went out. *)
  Alcotest.(check int) "r1 adopted the locked value" 3 (SP.state t.replicas.(1));
  Alcotest.(check int) "r2 agrees" 3 (SP.state t.replicas.(2));
  let histories = [| SP.committed_updates t.replicas.(1); SP.committed_updates t.replicas.(2) |] in
  Alcotest.(check int) "agreement" 0 (List.length (Grid_check.Agreement.check histories))

let test_duplicate_requests () =
  let t = H.create () in
  H.submit t ~seq:1 (Counter.Add 4);
  H.deliver_all t;
  ignore (H.take_replies t);
  H.submit t ~seq:1 (Counter.Add 4);
  H.deliver_all t;
  let replies = H.take_replies t in
  Alcotest.(check bool) "dedup answered" true (List.length replies >= 1);
  List.iter
    (fun (r : reply) ->
      Alcotest.(check int) "cached result" 4 (Counter.decode_result r.payload))
    replies;
  Alcotest.(check int) "executed once" 4 (SP.state t.replicas.(0));
  Alcotest.(check int) "one instance" 1 (SP.decided_count t.replicas.(0))

let test_randomized_agreement () =
  (* Random delivery orders and coordinator crashes across many seeds:
     agreement must always hold. *)
  let violations = ref 0 in
  for seed = 1 to 120 do
    let rng = Rng.of_int seed in
    let t = H.create () in
    for seq = 1 to 4 do
      H.submit t ~seq (Counter.Add seq)
    done;
    let crash_at = Rng.int rng 40 in
    for step = 0 to 600 do
      if step = crash_at then t.down.(0) <- true;
      (* Random choice: deliver a random pending message or fire a random
         timer. *)
      if t.pending <> [] && (t.timers = [] || Rng.int rng 4 < 3) then begin
        let k = Rng.int rng (List.length t.pending) in
        let msg = List.nth t.pending k in
        t.pending <- List.filteri (fun j _ -> j <> k) t.pending;
        let src, dst, m = msg in
        if not t.down.(dst) then H.feed t dst (Receive { src; msg = m })
      end
      else if t.timers <> [] then begin
        let live = List.filter (fun (i, _) -> not t.down.(i)) t.timers in
        if live <> [] then begin
          let k = Rng.int rng (List.length live) in
          let i, timer = List.nth live k in
          t.timers <- List.filter (fun e -> e != List.nth live k) t.timers;
          t.now <- t.now +. 200.0;
          H.feed t i (Timer timer)
        end
      end
    done;
    (* Drain deterministically. *)
    H.deliver_all t;
    let histories =
      Array.of_list
        (List.filteri (fun i _ -> not t.down.(i)) (Array.to_list t.replicas)
        |> List.map SP.committed_updates)
    in
    if Grid_check.Agreement.check histories <> [] then incr violations
  done;
  Alcotest.(check int) "no agreement violations across 120 schedules" 0 !violations

let suite =
  [
    ( "semi_passive",
      [
        Alcotest.test_case "failure-free run" `Quick test_failure_free_run;
        Alcotest.test_case "message pattern" `Quick test_message_pattern;
        Alcotest.test_case "coordinator rotation on suspicion" `Quick
          test_coordinator_rotation;
        Alcotest.test_case "◇S locking rule" `Quick test_locking_rule;
        Alcotest.test_case "duplicate requests" `Quick test_duplicate_requests;
        Alcotest.test_case "randomized agreement (120 schedules)" `Slow
          test_randomized_agreement;
      ] );
  ]
