(* T-Paxos transaction tests: atomic commit, abort, conflicts,
   leader-switch abort (§3.5/§3.6), and the latency advantage over
   per-operation coordination. *)

module Config = Grid_paxos.Config
module Scenario = Grid_runtime.Scenario
module Kv = Grid_services.Kv_store
module Wire = Grid_codec.Wire
open Grid_paxos.Types

module RT = Grid_runtime.Runtime.Make (Kv)

(* Typed-submit shim: these scripts sequence requests manually, so a
   [`Busy] here is a test bug. *)
let submit t c rtype ~payload =
  match RT.submit t c rtype ~payload with
  | `Submitted -> ()
  | `Busy -> Alcotest.fail "submit: client busy"

let cfg () = Config.make ~n:3 ~record_history:true ()

(* A transaction script: ops as Txn_op, then Txn_commit whose payload
   carries the op count (the leader aborts on mismatch). *)
let txn_items ~tid ops =
  List.map (fun op -> (Txn_op tid, Kv.encode_op op)) ops
  @ [ (Txn_commit tid, Wire.encode (fun e -> Wire.Encoder.uint e (List.length ops))) ]

let gen_of items ~client:_ =
  let remaining = ref items in
  fun () ->
    match !remaining with
    | [] -> None
    | item :: rest ->
      remaining := rest;
      Some item

let run_items ?(scenario = Scenario.uniform ()) ?(cfg = cfg ()) items =
  let t = RT.create ~cfg ~scenario () in
  let results =
    RT.run_closed_loop t ~clients:1 ~requests_per_client:(List.length items)
      ~gen:(gen_of items)
  in
  RT.run_until t (RT.now t +. 500.0);
  (t, results)

(* ------------------------------------------------------------------ *)

let test_txn_commit_atomic () =
  let items =
    txn_items ~tid:1
      [ Kv.Put { key = "a"; value = "1" }; Kv.Put { key = "b"; value = "2" } ]
  in
  let t, results = run_items items in
  Alcotest.(check int) "all replied" 3 results.total_completed;
  List.iter
    (fun r -> Alcotest.(check bool) "status ok" true (r.RT.rec_status = Ok))
    results.records;
  for i = 0 to 2 do
    let st = RT.R.state (RT.replica t i) in
    Alcotest.(check (option string)) "a" (Some "1") (Kv.find st "a");
    Alcotest.(check (option string)) "b" (Some "2") (Kv.find st "b")
  done;
  (* The whole transaction is one consensus instance. *)
  Alcotest.(check int) "one instance" 1 (RT.R.commit_point (RT.replica t 0))

let test_txn_abort_discards () =
  let items =
    List.map (fun op -> (Txn_op 1, Kv.encode_op op))
      [ Kv.Put { key = "x"; value = "doomed" } ]
    @ [ (Txn_abort 1, "") ]
  in
  let t, results = run_items items in
  Alcotest.(check int) "replied" 2 results.total_completed;
  (match List.rev results.records with
  | abort :: _ -> Alcotest.(check bool) "abort acknowledged" true (abort.RT.rec_status = Txn_aborted)
  | [] -> Alcotest.fail "no records");
  for i = 0 to 2 do
    Alcotest.(check (option string)) "x never committed" None
      (Kv.find (RT.R.state (RT.replica t i)) "x")
  done;
  Alcotest.(check int) "nothing decided" 0 (RT.R.commit_point (RT.replica t 0))

let test_txn_ops_fast_commit_slow () =
  (* §3.5: op replies take unreplicated time (2M); only the commit pays
     the accept phase. With 1 ms constant links: ops ≈ 2 ms, commit ≈ 4 ms. *)
  let items =
    txn_items ~tid:1
      [ Kv.Put { key = "a"; value = "1" }; Kv.Put { key = "b"; value = "2" } ]
  in
  let _, results = run_items items in
  (match results.records with
  | [ op1; op2; commit ] ->
    Alcotest.(check (float 0.3)) "op1 unreplicated latency" 2.0 op1.RT.rec_latency;
    Alcotest.(check (float 0.3)) "op2 unreplicated latency" 2.0 op2.RT.rec_latency;
    Alcotest.(check (float 0.3)) "commit pays the accept phase" 4.0 commit.RT.rec_latency
  | _ -> Alcotest.fail "expected three records")

let test_txn_isolation_until_commit () =
  (* A read (X-Paxos) by another client between the txn ops and the commit
     must not see uncommitted effects. *)
  let t = RT.create ~cfg:(cfg ()) ~scenario:(Scenario.uniform ()) () in
  ignore (RT.await_leader t);
  let seen = ref (Some "sentinel") in
  let txn_client = ref None and reader_client = ref None in
  let tc =
    RT.add_client t ~id:1
      ~on_reply:(fun _reply -> ())
      ()
  in
  txn_client := Some tc;
  let rc = RT.add_client t ~id:2 ~on_reply:(fun reply ->
      match Kv.decode_result reply.payload with
      | Kv.Value v -> seen := v
      | _ -> ()) ()
  in
  reader_client := Some rc;
  (* Send the op, then (after it is answered) a read, then commit. *)
  submit t tc (Txn_op 1) ~payload:(Kv.encode_op (Kv.Put { key = "k"; value = "v" }));
  RT.run_until t (RT.now t +. 50.0);
  submit t rc Read ~payload:(Kv.encode_op (Kv.Get "k"));
  RT.run_until t (RT.now t +. 50.0);
  Alcotest.(check (option string)) "uncommitted write invisible" None !seen;
  submit t tc (Txn_commit 1) ~payload:(Wire.encode (fun e -> Wire.Encoder.uint e 1));
  RT.run_until t (RT.now t +. 50.0);
  submit t rc Read ~payload:(Kv.encode_op (Kv.Get "k"));
  RT.run_until t (RT.now t +. 50.0);
  Alcotest.(check (option string)) "committed write visible" (Some "v") !seen

let test_txn_conflict_first_committer_wins () =
  let t = RT.create ~cfg:(cfg ()) ~scenario:(Scenario.uniform ()) () in
  ignore (RT.await_leader t);
  let statuses = Hashtbl.create 4 in
  let add_txn_client id tid =
    let cl = ref None in
    let c =
      RT.add_client t ~id
        ~on_reply:(fun reply -> Hashtbl.replace statuses (id, reply.req.seq) reply.status)
        ()
    in
    cl := Some c;
    (c, tid)
  in
  let c1, tid1 = add_txn_client 1 1 in
  let c2, tid2 = add_txn_client 2 1 in
  (* Both transactions write the same key; they interleave so both branch
     from the same commit point. *)
  submit t c1 (Txn_op tid1) ~payload:(Kv.encode_op (Kv.Put { key = "k"; value = "c1" }));
  submit t c2 (Txn_op tid2) ~payload:(Kv.encode_op (Kv.Put { key = "k"; value = "c2" }));
  RT.run_until t (RT.now t +. 50.0);
  submit t c1 (Txn_commit tid1) ~payload:(Wire.encode (fun e -> Wire.Encoder.uint e 1));
  RT.run_until t (RT.now t +. 50.0);
  submit t c2 (Txn_commit tid2) ~payload:(Wire.encode (fun e -> Wire.Encoder.uint e 1));
  RT.run_until t (RT.now t +. 200.0);
  Alcotest.(check bool) "first commit ok" true
    (Hashtbl.find statuses (1, 2) = Ok);
  Alcotest.(check bool) "second commit conflicts" true
    (Hashtbl.find statuses (2, 2) = Txn_conflict);
  Alcotest.(check (option string)) "first committer's value" (Some "c1")
    (Kv.find (RT.R.state (RT.replica t 0)) "k")

let test_txn_disjoint_no_conflict () =
  let t = RT.create ~cfg:(cfg ()) ~scenario:(Scenario.uniform ()) () in
  ignore (RT.await_leader t);
  let statuses = Hashtbl.create 4 in
  let mk id =
    RT.add_client t ~id
      ~on_reply:(fun reply -> Hashtbl.replace statuses (id, reply.req.seq) reply.status)
      ()
  in
  let c1 = mk 1 and c2 = mk 2 in
  submit t c1 (Txn_op 1) ~payload:(Kv.encode_op (Kv.Put { key = "a"; value = "1" }));
  submit t c2 (Txn_op 1) ~payload:(Kv.encode_op (Kv.Put { key = "b"; value = "2" }));
  RT.run_until t (RT.now t +. 50.0);
  submit t c1 (Txn_commit 1) ~payload:(Wire.encode (fun e -> Wire.Encoder.uint e 1));
  RT.run_until t (RT.now t +. 50.0);
  submit t c2 (Txn_commit 1) ~payload:(Wire.encode (fun e -> Wire.Encoder.uint e 1));
  RT.run_until t (RT.now t +. 200.0);
  Alcotest.(check bool) "c1 commit ok" true (Hashtbl.find statuses (1, 2) = Ok);
  Alcotest.(check bool) "c2 commit ok (disjoint keys rebase)" true
    (Hashtbl.find statuses (2, 2) = Ok);
  let st = RT.R.state (RT.replica t 1) in
  Alcotest.(check (option string)) "a" (Some "1") (Kv.find st "a");
  Alcotest.(check (option string)) "b" (Some "2") (Kv.find st "b")

let test_txn_leader_switch_aborts () =
  (* §3.6: if the leader switches mid-transaction, the new leader has no
     branch and must abort the commit. *)
  let t = RT.create ~cfg:(cfg ()) ~scenario:(Scenario.uniform ()) () in
  ignore (RT.await_leader t);
  let last_status = ref Ok in
  let c =
    RT.add_client t ~id:1 ~on_reply:(fun reply -> last_status := reply.status) ()
  in
  submit t c (Txn_op 1) ~payload:(Kv.encode_op (Kv.Put { key = "k"; value = "v" }));
  RT.run_until t (RT.now t +. 20.0);
  RT.crash_replica t 0;
  RT.run_until t (RT.now t +. 2_000.0);
  Alcotest.(check bool) "new leader elected" true (RT.leader t <> None && RT.leader t <> Some 0);
  submit t c (Txn_commit 1) ~payload:(Wire.encode (fun e -> Wire.Encoder.uint e 1));
  RT.run_until t (RT.now t +. 2_000.0);
  Alcotest.(check bool) "commit aborted after switch" true (!last_status = Txn_aborted);
  Alcotest.(check (option string)) "no partial effect" None
    (Kv.find (RT.R.state (RT.replica t 1)) "k")

let test_txn_multiple_sequential () =
  (* Several transactions back to back from one client; state accumulates
     and each is one instance. *)
  let items =
    List.concat
      (List.init 5 (fun k ->
           txn_items ~tid:(k + 1)
             [
               Kv.Put { key = Printf.sprintf "k%d" k; value = string_of_int k };
               Kv.Append { key = "log"; value = string_of_int k };
             ]))
  in
  let t, results = run_items items in
  Alcotest.(check int) "replied" 15 results.total_completed;
  Alcotest.(check int) "five instances" 5 (RT.R.commit_point (RT.replica t 0));
  for i = 0 to 2 do
    let st = RT.R.state (RT.replica t i) in
    Alcotest.(check (option string)) "log accumulated" (Some "01234") (Kv.find st "log");
    Alcotest.(check int) "all keys present" 6 (Kv.cardinal st)
  done

let test_txn_agreement_across_replicas () =
  let items =
    List.concat
      (List.init 3 (fun k ->
           txn_items ~tid:(k + 1) [ Kv.Put { key = "shared"; value = string_of_int k } ]))
  in
  let t, _ = run_items items in
  let histories = Array.init 3 (fun i -> RT.R.committed_updates (RT.replica t i)) in
  Alcotest.(check int) "agreement" 0 (List.length (Grid_check.Agreement.check histories));
  let enc i = Kv.encode_state (RT.R.state (RT.replica t i)) in
  Alcotest.(check string) "r1 = r0" (enc 0) (enc 1);
  Alcotest.(check string) "r2 = r0" (enc 0) (enc 2)

let suite =
  [
    ( "txn.tpaxos",
      [
        Alcotest.test_case "commit is atomic + one instance" `Quick test_txn_commit_atomic;
        Alcotest.test_case "abort discards" `Quick test_txn_abort_discards;
        Alcotest.test_case "ops fast, commit pays (§3.5)" `Quick
          test_txn_ops_fast_commit_slow;
        Alcotest.test_case "isolation until commit" `Quick test_txn_isolation_until_commit;
        Alcotest.test_case "conflict: first committer wins" `Quick
          test_txn_conflict_first_committer_wins;
        Alcotest.test_case "disjoint txns both commit" `Quick test_txn_disjoint_no_conflict;
        Alcotest.test_case "leader switch aborts (§3.6)" `Quick
          test_txn_leader_switch_aborts;
        Alcotest.test_case "sequential transactions" `Quick test_txn_multiple_sequential;
        Alcotest.test_case "agreement across replicas" `Quick
          test_txn_agreement_across_replicas;
      ] );
  ]
