(* The nemesis stress tier: a few hundred seeded model-checker schedules
   with the full cross-layer fault mix — clean and torn-persist crashes,
   metadata loss, message duplication, cross-channel reordering — over
   both reference services, asserting agreement, durability, and
   client-visible linearizability on every run; plus the planted dedup
   bug demonstrating that the checkers catch a real exactly-once
   violation and that schedule shrinking reduces it to a minimal fault
   plan. *)

module Stress = Grid_check.Stress
module Mcheck = Grid_check.Mcheck

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec at i = i + nl <= hl && (String.sub haystack i nl = needle || at (i + 1)) in
  nl = 0 || at 0

let fail_with failures =
  Alcotest.fail
    (Format.asprintf "%d failing schedules:@ %a" (List.length failures)
       (Format.pp_print_list ~pp_sep:Format.pp_print_cut Stress.pp_failure)
       failures)

(* 200+ schedules with the default nemesis must produce zero violations;
   a schedule that does fail is shrunk, so the assertion message carries
   the minimal reproducing plan. *)
let test_stress_batch () =
  let summary = Stress.run ~schedules:220 ~base_seed:1 ~steps:1_200 () in
  Alcotest.(check int) "schedules run" 220 summary.schedules;
  if summary.failures <> [] then fail_with summary.failures;
  (* The batch must actually have exercised every fault kind, or the
     zero-violation claim is vacuous. *)
  Alcotest.(check bool) "crashes injected" true (summary.crashes > 0);
  Alcotest.(check bool) "torn persists injected" true (summary.torn_persists > 0);
  Alcotest.(check bool) "metadata drops injected" true (summary.meta_dropped > 0);
  Alcotest.(check bool) "duplication injected" true (summary.duplicated > 0);
  Alcotest.(check bool) "reordering injected" true (summary.reordered > 0);
  (* The online watchdogs ran inside every replica of every schedule and
     stayed silent alongside the offline oracles. *)
  Alcotest.(check int) "watchdogs silent" 0 summary.watchdog_violations

(* A recorded fault plan replays to the identical outcome. *)
let test_stress_replay_deterministic () =
  List.iter
    (fun service ->
      let seed = 42 in
      let o, failure = Stress.run_one ~service ~steps:1_200 ~seed () in
      (match failure with
      | Some f -> Alcotest.failf "seed %d failed: %a" seed Stress.pp_failure f
      | None -> ());
      let replay plan =
        match service with
        | Stress.Counter_service ->
          fst
            (Stress.Counter_harness.replay_plan ~steps:1_200
               ~meta_drop_prob:Stress.default_nemesis.Mcheck.meta_drop_prob ~seed
               ~plan ())
        | Stress.Kv_service ->
          fst
            (Stress.Kv_harness.replay_plan ~steps:1_200
               ~meta_drop_prob:Stress.default_nemesis.Mcheck.meta_drop_prob ~seed
               ~plan ())
      in
      let r = replay o.plan in
      Alcotest.(check int) "same deliveries" o.delivered r.Mcheck.delivered;
      Alcotest.(check int) "same timer fires" o.timer_fires r.timer_fires;
      Alcotest.(check (array int)) "same commit points" o.committed r.committed;
      Alcotest.(check int) "same replies" (List.length o.replies)
        (List.length r.replies))
    [ Stress.Counter_service; Stress.Kv_service ]

(* Plant the dedup bug: with the table disabled, a duplicated client
   request that lands after its first commit commits again. Find a seed
   where the injected faults are essential (the fault-free schedule
   passes), shrink, and confirm the minimal plan still fails, is
   non-empty, and retains a duplication event. *)
let test_stress_planted_dedup_shrinks () =
  let steps = 1_000 in
  let nemesis = { Stress.default_nemesis with Mcheck.dup_prob = 0.15 } in
  let replay_reasons ~seed ~plan =
    snd
      (Stress.Counter_harness.replay_plan ~steps
         ~meta_drop_prob:nemesis.Mcheck.meta_drop_prob ~disable_dedup:true ~seed
         ~plan ())
  in
  let rec hunt seed =
    if seed > 60 then
      Alcotest.fail "planted dedup bug escaped 60 schedules"
    else
      match
        Stress.run_one ~service:Stress.Counter_service ~steps ~nemesis
          ~disable_dedup:true ~shrink:true ~seed ()
      with
      | _, Some f when replay_reasons ~seed ~plan:[] = [] -> (seed, f)
      | _ -> hunt (seed + 1)
  in
  let seed, f = hunt 1 in
  (* The checkers named the bug: an exactly-once violation. *)
  Alcotest.(check bool) "double commit reported" true
    (List.exists
       (fun r ->
         contains ~needle:"committed request" r
         || contains ~needle:"non-linearizable" r)
       f.reasons);
  (* The online watchdog caught the same planted bug from inside the
     replicas, in real time. *)
  Alcotest.(check bool) "watchdog fired on the planted bug" true
    (List.exists (contains ~needle:"watchdog:") f.reasons);
  match f.shrunk with
  | None -> Alcotest.fail "no shrunk plan"
  | Some shrunk ->
    Alcotest.(check bool) "shrunk plan is smaller" true
      (List.length shrunk <= List.length f.plan);
    Alcotest.(check bool) "shrunk plan non-empty" true (shrunk <> []);
    Alcotest.(check bool) "shrunk plan keeps a duplication or reorder" true
      (List.exists
         (function
           | Mcheck.Duplicate_at _ | Mcheck.Reorder_at _ -> true | _ -> false)
         shrunk);
    Alcotest.(check bool) "shrunk plan still fails" true
      (replay_reasons ~seed ~plan:shrunk <> []);
    (* Minimality (1-minimal): removing any single remaining event makes
       the failure disappear. *)
    List.iteri
      (fun i _ ->
        let without = List.filteri (fun j _ -> j <> i) shrunk in
        Alcotest.(check bool)
          (Printf.sprintf "dropping event %d un-fails the schedule" i)
          true
          (replay_reasons ~seed ~plan:without = []))
      shrunk

(* The same duplication-heavy nemesis with deduplication ENABLED commits
   each request exactly once: the dedup table is what the planted bug
   removed. *)
let test_stress_dedup_protects () =
  let nemesis = { Stress.default_nemesis with Mcheck.dup_prob = 0.15 } in
  for seed = 1 to 30 do
    let _, failure =
      Stress.run_one ~service:Stress.Counter_service ~steps:1_000 ~nemesis
        ~shrink:false ~seed ()
    in
    match failure with
    | Some f -> Alcotest.failf "dedup-on seed %d failed: %a" seed Stress.pp_failure f
    | None -> ()
  done

(* Crash-heavy schedules over the read-bearing workloads: leaders die
   with read confirms in flight, clients get Retry redirects and fail
   over, and every schedule must still be linearizable with no stale
   read (the oracle watermarks each read at issue time). *)
let test_stress_leader_crash_mid_read () =
  let nemesis = { Stress.default_nemesis with Mcheck.crash_prob = 0.01 } in
  let summary = Stress.run ~schedules:120 ~base_seed:500 ~steps:1_200 ~nemesis () in
  if summary.failures <> [] then fail_with summary.failures;
  Alcotest.(check bool) "crashes injected" true (summary.crashes > 0)

(* The lease tier: 220 schedules with the read fast path enabled, clock
   drift within the configured skew bound, and the usual crash/duplicate
   /reorder mix. The stale-read oracle must find no leased read that
   missed a write committed before it was issued — across failovers and
   lease blackouts included. *)
let test_stress_leased_reads_under_drift () =
  let cfg_tweak c =
    Grid_paxos.Config.make ~base:c ~lease_ms:50.0 ~clock_skew_bound_ms:10.0 ()
  in
  let summary =
    Stress.run ~schedules:220 ~base_seed:1 ~steps:1_200
      ~nemesis:Stress.lease_nemesis ~cfg_tweak ()
  in
  Alcotest.(check int) "schedules run" 220 summary.schedules;
  if summary.failures <> [] then fail_with summary.failures;
  Alcotest.(check bool) "clock drift injected" true (summary.drifted > 0);
  Alcotest.(check bool) "failovers exercised" true (summary.crashes > 0)

(* The overload tier: 200 schedules of the counter service with a
   deliberately tiny admission window (2/2) under the crash-doubled
   nemesis. On top of the usual oracles, every schedule checks the
   admitted-loss oracle (no Ok-acknowledged write vanishes across
   shedding and leader churn) and that admitted-request p99 latency
   stays bounded; the batch must actually exercise pushback and
   crashes, or the claim is vacuous. *)
let test_stress_overload_tier () =
  let summary = Stress.run_overload ~schedules:200 ~base_seed:1 () in
  Alcotest.(check int) "schedules run" 200 summary.schedules;
  if summary.failures <> [] then fail_with summary.failures;
  Alcotest.(check bool) "Overloaded pushback exercised" true (summary.shed > 0);
  Alcotest.(check bool) "crashes injected" true (summary.crashes > 0);
  Alcotest.(check bool)
    (Printf.sprintf "admitted p99 bounded (%.1f ms)" summary.admitted_p99_max)
    true
    (summary.admitted_p99_max > 0.0 && summary.admitted_p99_max <= 120_000.0)

let suite =
  [
    ( "stress.nemesis",
      [
        Alcotest.test_case "220 nemesis schedules hold all invariants" `Slow
          test_stress_batch;
        Alcotest.test_case "200 overload schedules keep admitted writes" `Slow
          test_stress_overload_tier;
        Alcotest.test_case "leader crashes mid-read stay linearizable" `Slow
          test_stress_leader_crash_mid_read;
        Alcotest.test_case "leased reads stay fresh under clock drift" `Slow
          test_stress_leased_reads_under_drift;
        Alcotest.test_case "fault plans replay deterministically" `Quick
          test_stress_replay_deterministic;
        Alcotest.test_case "planted dedup bug is caught and shrunk" `Slow
          test_stress_planted_dedup_shrinks;
        Alcotest.test_case "dedup survives duplication storms" `Slow
          test_stress_dedup_protects;
      ] );
  ]
