(* A hand-driven harness for engine-level protocol tests: three replica
   engines wired through explicit, inspectable mailboxes. Unlike the
   simulator, nothing moves unless the test says so — each test scripts
   exactly which messages are delivered and which timers fire, so it can
   place the protocol in precise states (mid-prepare, gap recovery,
   stale-ballot races). *)

module Counter = Grid_services.Counter
module Replica = Grid_paxos.Replica.Make (Counter)
module Ids = Grid_util.Ids
open Grid_paxos.Types

type t = {
  replicas : Replica.t array;
  (* Undelivered messages, in send order. *)
  mutable pending : (int * int * msg) list;  (* (src, dst, msg) *)
  mutable timers : (int * timer) list;
  mutable replies : reply list;
  mutable now : float;
}

let absorb t i actions =
  List.iter
    (function
      | Send { dst; msg } ->
        if node_is_client dst then begin
          match msg with
          | Reply_msg r -> t.replies <- r :: t.replies
          | _ -> ()
        end
        else t.pending <- t.pending @ [ (i, dst, msg) ]
      | After { timer; _ } -> t.timers <- t.timers @ [ (i, timer) ]
      | Note _ -> ())
    actions

let create ?(n = 3) ?(cfg_tweak = Fun.id) () =
  let cfg = cfg_tweak (Grid_paxos.Config.make ~n ~record_history:true ()) in
  let replicas = Array.init n (fun i -> Replica.create ~cfg ~id:i ~seed:(100 + i) ()) in
  let t = { replicas; pending = []; timers = []; replies = []; now = 0.0 } in
  Array.iteri (fun i r -> absorb t i (Replica.bootstrap r)) replicas;
  t

let advance t dt = t.now <- t.now +. dt

let feed t i input = absorb t i (Replica.handle t.replicas.(i) ~now:t.now input)

(* Deliver the oldest pending message matching the filter; false if none. *)
let deliver ?(filter = fun _ _ _ -> true) t =
  let rec split acc = function
    | [] -> None
    | ((src, dst, msg) as m) :: rest ->
      if filter src dst msg then Some (m, List.rev_append acc rest)
      else split (m :: acc) rest
  in
  match split [] t.pending with
  | None -> false
  | Some ((src, dst, msg), rest) ->
    t.pending <- rest;
    feed t dst (Receive { src; msg });
    true

let deliver_all ?filter t =
  let guard = ref 100_000 in
  while deliver ?filter t && !guard > 0 do
    decr guard
  done

(* Drop every pending message matching the filter (message loss). *)
let drop t ~filter =
  t.pending <- List.filter (fun (src, dst, msg) -> not (filter src dst msg)) t.pending

(* Fire the oldest pending timer of replica [i] matching [want]. *)
let fire t i want =
  let rec split acc = function
    | [] -> None
    | ((j, timer) as e) :: rest ->
      if j = i && want timer then Some (timer, List.rev_append acc rest)
      else split (e :: acc) rest
  in
  match split [] t.timers with
  | None -> false
  | Some (timer, rest) ->
    t.timers <- rest;
    feed t i (Timer timer);
    true

(* Promote replica [i] to leader by driving its election by hand and
   letting every message flow. *)
let elect t i =
  feed t i (Timer Suspicion_tick);
  advance t 1000.0;
  feed t i (Timer Suspicion_tick);
  (* Let the stability hold-down (cfg default 30 ms) elapse. *)
  advance t 50.0;
  ignore (fire t i (function Stability_check _ -> true | _ -> false));
  deliver_all t;
  assert (Replica.is_leader t.replicas.(i))

let client_request ?(client = 1) ~seq ~rtype ~payload () : request =
  { id = Ids.Request_id.make ~client:(Ids.Client_id.of_int client) ~seq; rtype; payload;
    trace = no_trace }

(* Broadcast a client request to every replica. *)
let submit t (r : request) =
  Array.iteri
    (fun i _ -> feed t i (Receive { src = client_node r.id.client; msg = Client_req r }))
    t.replicas

let take_replies t =
  let r = List.rev t.replies in
  t.replies <- [];
  r

let pending_kinds t = List.map (fun (_, _, m) -> msg_kind m) t.pending
