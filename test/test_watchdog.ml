(* Unit tests for the online invariant watchdogs: each check fires on
   its planted violation and stays silent on legitimate histories —
   recovery replay, retransmitted commits at the same instance, lease
   handover after expiry, and independent leases across shard groups. *)

module Watchdog = Grid_obs.Watchdog
module Metrics = Grid_obs.Metrics

let test_dup_commit () =
  let t = Watchdog.create () in
  let m = Watchdog.monitor t ~actor:"r0" in
  Watchdog.record_commit m ~client:1 ~seq:1 ~instance:4;
  (* A retransmitted learn of the same instance is not a duplicate. *)
  Watchdog.record_commit m ~client:1 ~seq:1 ~instance:4;
  Alcotest.(check int) "same instance re-learned" 0 (Watchdog.violations t);
  Watchdog.record_commit m ~client:1 ~seq:1 ~instance:9;
  Alcotest.(check int) "different instance fires" 1 (Watchdog.dup_commits t);
  Alcotest.(check int) "total counted" 1 (Watchdog.violations t)

let test_seed_commit_is_unchecked () =
  let t = Watchdog.create () in
  let m = Watchdog.monitor t ~actor:"r0" in
  (* Recovery replay seeds the table without flagging... *)
  Watchdog.seed_commit m ~client:2 ~seq:3 ~instance:7;
  Watchdog.record_commit m ~client:2 ~seq:3 ~instance:7;
  Alcotest.(check int) "replayed commit silent" 0 (Watchdog.violations t);
  (* ...but still arms the dup check for a later conflicting commit. *)
  Watchdog.record_commit m ~client:2 ~seq:3 ~instance:8;
  Alcotest.(check int) "post-recovery dup caught" 1 (Watchdog.dup_commits t)

let test_lost_ack () =
  let t = Watchdog.create () in
  let m = Watchdog.monitor t ~actor:"r0" in
  Watchdog.record_commit m ~client:1 ~seq:1 ~instance:0;
  Watchdog.write_acked m ~client:1 ~seq:1;
  Alcotest.(check int) "committed ack silent" 0 (Watchdog.violations t);
  Watchdog.write_acked m ~client:1 ~seq:2;
  Alcotest.(check int) "uncommitted ack fires" 1 (Watchdog.lost_acks t)

let test_stale_read () =
  let t = Watchdog.create () in
  let m = Watchdog.monitor t ~actor:"r0" in
  Watchdog.read_replied m ~client:1 ~seq:1 ~watermark:5 ~exec_point:5;
  Watchdog.read_replied m ~client:1 ~seq:2 ~watermark:5 ~exec_point:8;
  Alcotest.(check int) "reads at/after watermark silent" 0 (Watchdog.violations t);
  Watchdog.read_replied m ~client:1 ~seq:3 ~watermark:5 ~exec_point:4;
  Alcotest.(check int) "read below watermark fires" 1 (Watchdog.stale_reads t)

let test_lease_mutual_exclusion () =
  let t = Watchdog.create () in
  let r0 = Watchdog.monitor t ~actor:"r0" in
  let r1 = Watchdog.monitor t ~actor:"r1" in
  Watchdog.lease_claimed r0 ~now:0.0 ~until:100.0 ~slack_ms:4.0;
  (* The holder re-claiming inside its own window is fine. *)
  Watchdog.lease_claimed r0 ~now:50.0 ~until:120.0 ~slack_ms:4.0;
  Alcotest.(check int) "holder re-claims" 0 (Watchdog.violations t);
  (* Another replica claiming after expiry (plus slack) is a handover. *)
  Watchdog.lease_claimed r1 ~now:130.0 ~until:200.0 ~slack_ms:4.0;
  Alcotest.(check int) "post-expiry handover" 0 (Watchdog.violations t);
  (* A third claim by r0 while r1's window is live is the violation. *)
  Watchdog.lease_claimed r0 ~now:150.0 ~until:220.0 ~slack_ms:4.0;
  Alcotest.(check int) "overlapping claim fires" 1 (Watchdog.lease_conflicts t)

let test_lease_groups_are_independent () =
  let t = Watchdog.create () in
  let s0 = Watchdog.monitor t ~actor:"s0/r0" in
  let s1 = Watchdog.monitor t ~actor:"s1/r2" in
  (* Two shards lease concurrently: different groups, no conflict. *)
  Watchdog.lease_claimed s0 ~now:0.0 ~until:100.0 ~slack_ms:4.0;
  Watchdog.lease_claimed s1 ~now:1.0 ~until:100.0 ~slack_ms:4.0;
  Alcotest.(check int) "cross-shard leases coexist" 0 (Watchdog.violations t);
  (* Within one shard the exclusion still holds. *)
  let s0' = Watchdog.monitor t ~actor:"s0/r1" in
  Watchdog.lease_claimed s0' ~now:10.0 ~until:100.0 ~slack_ms:4.0;
  Alcotest.(check int) "same-shard overlap fires" 1 (Watchdog.lease_conflicts t)

let test_fail_stop_and_callback () =
  let seen = ref [] in
  let t =
    Watchdog.create ~fail_stop:true
      ~on_violation:(fun ~check ~detail:_ -> seen := check :: !seen)
      ()
  in
  let m = Watchdog.monitor t ~actor:"r0" in
  (match Watchdog.write_acked m ~client:9 ~seq:1 with
  | () -> Alcotest.fail "fail_stop did not raise"
  | exception Watchdog.Violation msg ->
    Alcotest.(check bool) "message names the check" true
      (String.length msg > 0 && !seen = [ "lost_ack" ]));
  (* The violation was counted before the raise. *)
  Alcotest.(check int) "counted despite raise" 1 (Watchdog.violations t)

let test_disabled_and_reset () =
  let m = Watchdog.monitor Watchdog.disabled ~actor:"r0" in
  Watchdog.write_acked m ~client:1 ~seq:1;
  Watchdog.read_replied m ~client:1 ~seq:2 ~watermark:5 ~exec_point:0;
  Alcotest.(check int) "disabled sink is inert" 0
    (Watchdog.violations Watchdog.disabled);
  let t = Watchdog.create () in
  let m = Watchdog.monitor t ~actor:"r0" in
  Watchdog.write_acked m ~client:1 ~seq:1;
  Watchdog.lease_claimed m ~now:0.0 ~until:100.0 ~slack_ms:0.0;
  Alcotest.(check int) "armed" 1 (Watchdog.violations t);
  Watchdog.reset t;
  Alcotest.(check int) "reset zeroes" 0 (Watchdog.violations t);
  (* The lease view was cleared too: a fresh claim is not a conflict. *)
  let m' = Watchdog.monitor t ~actor:"r1" in
  Watchdog.lease_claimed m' ~now:1.0 ~until:50.0 ~slack_ms:0.0;
  Alcotest.(check int) "lease view cleared" 0 (Watchdog.violations t)

let test_metrics_registration () =
  let reg = Metrics.create () in
  let t = Watchdog.create ~metrics:reg () in
  Alcotest.(check bool) "counters registered" true
    (Metrics.mem reg "grid_watchdog_violations_total"
    && Metrics.mem reg "grid_watchdog_stale_read_total");
  let m = Watchdog.monitor t ~actor:"r0" in
  Watchdog.read_replied m ~client:1 ~seq:1 ~watermark:3 ~exec_point:1;
  let text = Metrics.expose reg in
  let contains needle =
    let n = String.length text and k = String.length needle in
    let rec scan i = i + k <= n && (String.sub text i k = needle || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "exposition carries the firing" true
    (contains "grid_watchdog_violations_total 1"
    && contains "grid_watchdog_stale_read_total 1")

let suite =
  [
    ( "watchdog.checks",
      [
        Alcotest.test_case "duplicate commit" `Quick test_dup_commit;
        Alcotest.test_case "recovery seeding unchecked" `Quick
          test_seed_commit_is_unchecked;
        Alcotest.test_case "lost acknowledged write" `Quick test_lost_ack;
        Alcotest.test_case "stale read watermark" `Quick test_stale_read;
        Alcotest.test_case "lease mutual exclusion" `Quick
          test_lease_mutual_exclusion;
        Alcotest.test_case "lease groups independent" `Quick
          test_lease_groups_are_independent;
      ] );
    ( "watchdog.sink",
      [
        Alcotest.test_case "fail-stop raises after counting" `Quick
          test_fail_stop_and_callback;
        Alcotest.test_case "disabled and reset" `Quick test_disabled_and_reset;
        Alcotest.test_case "metrics registration" `Quick test_metrics_registration;
      ] );
  ]
