(* Property and fuzz tier for the versioned wire codecs (V1, V2).

   Three obligations:
   - every [Types.msg] constructor roundtrips through every codec
     version (exhaustive samples + randomized instances);
   - decoding is total: truncations, byte flips and random garbage
     produce a typed [Error], never an exception or silent garbage;
   - the version plumbing (negotiate, of_version, header magic,
     reserved flag bits, cross-version rejection) behaves as
     DESIGN.md §15 specifies.

   Message equality goes through the canonical V1 body encoding rather
   than [(=)]: lease anchors and heartbeat clocks are floats that can be
   [nan], and [nan <> nan] would fail structural comparison on messages
   that are byte-identical on the wire. *)

module Types = Grid_paxos.Types
module WC = Grid_paxos.Wire_codec
module Wire = Grid_codec.Wire
module Wire_intf = Grid_codec.Wire_intf
module Ids = Grid_util.Ids

let codecs =
  [ (module WC.V1 : Wire_intf.WIRE with type msg = Types.msg); (module WC.V2) ]

(* Canonical bytes of a message: the V1 body encoding (no header). Equal
   canon = equal message, nan-safe. *)
let canon m = Wire.encode (fun e -> Types.encode_msg e m)

(* ------------------------------------------------------------------ *)
(* Exhaustive constructor samples. *)

let ballot = Types.Ballot.make ~round:3 ~holder:1

let req ?(rtype = Types.Write) ?(trace = Types.no_trace) ?(payload = "op") seq :
    Types.request =
  { id = Ids.Request_id.make ~client:(Ids.Client_id.of_int 4) ~seq;
    rtype; payload; trace }

let traced = { Types.tid = 77; parent = "span-3" }

let reply ?(status = Types.Ok) ?(payload = "res") seq : Types.reply =
  { req = (req seq).id; status; payload }

let proposal_aligned : Types.proposal =
  { requests = [ req 1; req 2 ];
    update = Types.Delta "d";
    replies = [ reply 1; reply 2 ] }

let proposal_misaligned : Types.proposal =
  (* Reply ids do not match the request batch: V2 must fall back to the
     positional-id-free encoding. *)
  { requests = [ req 1 ];
    update = Types.Full "state";
    replies = [ reply 9 ] }

(* At least one sample per constructor, plus the variants that exercise
   each V2 flag and escape path (traced/untraced, lease present/absent,
   aligned/misaligned, option arms). *)
let sample_msgs : (string * Types.msg) list =
  [
    ("client_req", Client_req (req 1));
    ("client_req traced", Client_req (req ~trace:traced 2));
    ("client_req txn", Client_req (req ~rtype:(Types.Txn_op 5) 3));
    ("client_req txn_prepare",
     Client_req (req ~rtype:(Types.Txn_prepare 1_000_000_042) 4));
    ("client_req reshard_freeze",
     Client_req (req ~rtype:(Types.Reshard_freeze 3) 5));
    ("client_req reshard_install",
     Client_req (req ~rtype:(Types.Reshard_install 3) 6));
    ("client_req reshard_commit",
     Client_req (req ~rtype:(Types.Reshard_commit 3) 7));
    ("client_req reshard_abort",
     Client_req (req ~rtype:(Types.Reshard_abort 3) 8));
    ("reply", Reply_msg (reply 1));
    ("reply overloaded",
     Reply_msg (reply ~status:(Types.Overloaded { retry_after_ms = 12.5 }) 2));
    ("reply wrong_epoch",
     Reply_msg (reply ~status:(Types.Wrong_epoch { epoch = 4; map = "map!" }) 3));
    ("prepare", Prepare { ballot; commit_point = 41 });
    ("prepare_ack empty",
     Prepare_ack { ballot; commit_point = 41; snapshot = None; accepted = [] });
    ("prepare_ack full",
     Prepare_ack
       { ballot; commit_point = 41; snapshot = Some "snap";
         accepted =
           [ { Types.instance = 42; ballot; proposal = proposal_aligned } ] });
    ("accept", Accept { ballot; instance = 42; proposal = proposal_aligned });
    ("accept misaligned",
     Accept { ballot; instance = 42; proposal = proposal_misaligned });
    ("accept traced",
     Accept
       { ballot; instance = 43;
         proposal =
           { proposal_aligned with requests = [ req ~trace:traced 1; req 2 ] } });
    ("accept_ack", Accept_ack { ballot; instance = 42 });
    ("reject", Reject { promised = ballot });
    ("commit", Commit { ballot; instance = 42 });
    ("read_confirm leased",
     Read_confirm { ballot; req = (req 5).id; lease_anchor = 123.5 });
    ("read_confirm no lease",
     Read_confirm { ballot; req = (req 5).id; lease_anchor = Float.nan });
    ("heartbeat leased",
     Heartbeat
       { round_seen = 3; commit_point = 41; promised = ballot; sent_at = 99.25;
         lease_anchor = 98.0 });
    ("heartbeat no lease",
     Heartbeat
       { round_seen = 3; commit_point = 41; promised = ballot; sent_at = 99.25;
         lease_anchor = Float.nan });
    ("catchup_req", Catchup_req { from_instance = 17 });
    ("catchup", Catchup { snapshot = String.make 100 's' });
    ("sp_estimate none", Sp_estimate { instance = 7; round = 2; estimate = None });
    ("sp_estimate some",
     Sp_estimate
       { instance = 7; round = 2; estimate = Some (proposal_aligned, 1) });
    ("sp_propose",
     Sp_propose { instance = 7; round = 2; proposal = proposal_aligned });
    ("sp_ack", Sp_ack { instance = 7; round = 2 });
    ("sp_decide", Sp_decide { instance = 7; proposal = proposal_misaligned });
  ]

let test_every_constructor_roundtrips () =
  (* The sample set must cover all 16 wire tags. *)
  let tags =
    List.sort_uniq compare (List.map (fun (_, m) -> Types.msg_tag m) sample_msgs)
  in
  Alcotest.(check int) "all 16 tags sampled" 16 (List.length tags);
  List.iter
    (fun (module W : Wire_intf.WIRE with type msg = Types.msg) ->
      List.iter
        (fun (name, m) ->
          match W.decode (W.encode m) with
          | Stdlib.Ok m' ->
            Alcotest.(check string)
              (Printf.sprintf "v%d %s" W.version name)
              (canon m) (canon m')
          | Stdlib.Error e ->
            Alcotest.fail
              (Printf.sprintf "v%d %s: %s" W.version name
                 (Wire_intf.decode_error_to_string e)))
        sample_msgs)
    codecs

(* ------------------------------------------------------------------ *)
(* Version plumbing. *)

let test_negotiate () =
  Alcotest.(check (option int)) "min wins" (Some 1)
    (WC.negotiate ~local_max:2 ~peer_max:1);
  Alcotest.(check (option int)) "symmetric" (Some 1)
    (WC.negotiate ~local_max:1 ~peer_max:2);
  Alcotest.(check (option int)) "latest" (Some 2)
    (WC.negotiate ~local_max:2 ~peer_max:2);
  Alcotest.(check (option int)) "future peer capped" (Some 2)
    (WC.negotiate ~local_max:2 ~peer_max:9);
  Alcotest.(check (option int)) "below min rejected" None
    (WC.negotiate ~local_max:2 ~peer_max:0)

let test_of_version () =
  List.iter
    (fun v ->
      match WC.of_version v with
      | Some (module W : Wire_intf.WIRE with type msg = Types.msg) ->
        Alcotest.(check int) "version field" v W.version
      | None -> Alcotest.fail (Printf.sprintf "version %d should resolve" v))
    [ 1; 2 ];
  Alcotest.(check bool) "0 unknown" true (WC.of_version 0 = None);
  Alcotest.(check bool) "3 unknown" true (WC.of_version 3 = None);
  Alcotest.check_raises "of_version_exn on unknown"
    (Invalid_argument "Wire_codec.of_version_exn: version 9") (fun () ->
      ignore (WC.of_version_exn 9))

let is_error = function Stdlib.Error _ -> true | Stdlib.Ok _ -> false

let test_cross_version_rejection () =
  (* A V2 frame starts with the 0xA2 header byte, which V1 reads as an
     out-of-range message tag; a V1 frame starts with a tag varint that
     fails V2's magic check. Neither can be misparsed as the other. *)
  List.iter
    (fun (_, m) ->
      Alcotest.(check bool) "v1 rejects v2 bytes" true
        (is_error (WC.V1.decode (WC.V2.encode m)));
      Alcotest.(check bool) "v2 rejects v1 bytes" true
        (is_error (WC.V2.decode (WC.V1.encode m))))
    sample_msgs

let test_v2_header_validation () =
  let m = Types.Accept { ballot; instance = 42; proposal = proposal_aligned } in
  let s = WC.V2.encode m in
  Alcotest.(check int) "magic nibble" 0xA (Char.code s.[0] lsr 4);
  Alcotest.(check int) "version nibble" 2 (Char.code s.[0] land 0xF);
  (* Reserved flag bit: a decoder that ignored it would silently
     misparse frames from a future minor revision. *)
  let reserved = Bytes.of_string s in
  Bytes.set reserved 1 (Char.chr (Char.code s.[1] lor 0x80));
  Alcotest.(check bool) "reserved flag rejected" true
    (is_error (WC.V2.decode (Bytes.to_string reserved)));
  (* Future version in the header: not ours to parse. *)
  let future = Bytes.of_string s in
  Bytes.set future 0 (Wire_intf.header_byte ~version:3);
  Alcotest.(check bool) "future version rejected" true
    (is_error (WC.V2.decode (Bytes.to_string future)));
  (* Degenerate inputs. *)
  List.iter
    (fun (module W : Wire_intf.WIRE with type msg = Types.msg) ->
      Alcotest.(check bool)
        (Printf.sprintf "v%d empty rejected" W.version)
        true
        (is_error (W.decode ""));
      Alcotest.(check bool)
        (Printf.sprintf "v%d one byte rejected" W.version)
        true
        (is_error (W.decode "\xA2")))
    codecs

let test_decode_error_metadata () =
  List.iter
    (fun (module W : Wire_intf.WIRE with type msg = Types.msg) ->
      match W.decode "" with
      | Stdlib.Error e ->
        Alcotest.(check int) "error names its codec" W.version e.version
      | Stdlib.Ok _ -> Alcotest.fail "empty input decoded")
    codecs

(* ------------------------------------------------------------------ *)
(* Randomized instances and fuzz. *)

open QCheck2

let gen_payload = Gen.(string_size (int_bound 24))

let gen_trace =
  Gen.oneof
    [ Gen.return Types.no_trace;
      Gen.map2
        (fun tid parent -> { Types.tid = tid + 1; parent })
        (Gen.int_bound 1000) gen_payload ]

let gen_rtype =
  Gen.oneofl
    [ Types.Read; Types.Write; Types.Original; Types.Txn_op 3;
      Types.Txn_commit 9; Types.Txn_abort 9;
      Types.Txn_prepare 1_000_000_007;
      Types.Reshard_freeze 1; Types.Reshard_install 2;
      Types.Reshard_commit 3; Types.Reshard_abort 4 ]

let gen_status =
  Gen.oneofl
    [ Types.Ok; Types.Txn_aborted; Types.Txn_conflict; Types.Retry;
      Types.Overloaded { retry_after_ms = 40.0 };
      Types.Wrong_epoch { epoch = 7; map = "m" };
      Types.Wrong_epoch { epoch = 1; map = "" } ]

let gen_ballot =
  Gen.map2
    (fun round holder -> Types.Ballot.make ~round ~holder)
    Gen.small_nat (Gen.int_bound 4)

let gen_float = Gen.oneofl [ 0.0; 1.5; -2.25; 9999.125; Float.nan ]

let gen_request =
  Gen.map3
    (fun (client, seq) (rtype, payload) trace ->
      { Types.id =
          Ids.Request_id.make ~client:(Ids.Client_id.of_int client)
            ~seq:(seq + 1);
        rtype; payload; trace })
    (Gen.pair (Gen.int_bound 9) (Gen.int_bound 100))
    (Gen.pair gen_rtype gen_payload)
    gen_trace

let gen_reply_for (r : Types.request) =
  Gen.map2
    (fun status payload -> { Types.req = r.id; status; payload })
    gen_status gen_payload

let gen_proposal =
  (* Half the time the replies line up with the request batch (the
     committed-entry shape V2 encodes positionally), half the time they
     do not. *)
  let open Gen in
  gen_request >>= fun r1 ->
  gen_request >>= fun r2 ->
  gen_reply_for r1 >>= fun p1 ->
  gen_reply_for r2 >>= fun p2 ->
  gen_reply_for r2 >>= fun stray ->
  map2
    (fun update aligned ->
      { Types.requests = [ r1; r2 ];
        update;
        replies = (if aligned then [ p1; p2 ] else [ stray ]) })
    (oneofl
       [ Types.Full "full-state"; Types.Delta "delta"; Types.Witness "w" ])
    bool

let gen_msg =
  let open Gen in
  gen_ballot >>= fun ballot ->
  gen_request >>= fun r ->
  gen_proposal >>= fun p ->
  gen_reply_for r >>= fun rep ->
  gen_float >>= fun f1 ->
  gen_float >>= fun f2 ->
  int_bound 100 >>= fun n ->
  oneofl
    [ Types.Client_req r;
      Types.Reply_msg rep;
      Types.Prepare { ballot; commit_point = n };
      Types.Prepare_ack
        { ballot; commit_point = n; snapshot = None; accepted = [] };
      Types.Prepare_ack
        { ballot; commit_point = n; snapshot = Some "snap";
          accepted = [ { Types.instance = n + 1; ballot; proposal = p } ] };
      Types.Accept { ballot; instance = n; proposal = p };
      Types.Accept_ack { ballot; instance = n };
      Types.Reject { promised = ballot };
      Types.Commit { ballot; instance = n };
      Types.Read_confirm { ballot; req = r.id; lease_anchor = f1 };
      Types.Heartbeat
        { round_seen = n; commit_point = n; promised = ballot; sent_at = f1;
          lease_anchor = f2 };
      Types.Catchup_req { from_instance = n };
      Types.Catchup { snapshot = "snap" };
      Types.Sp_estimate { instance = n; round = 2; estimate = None };
      Types.Sp_estimate { instance = n; round = 2; estimate = Some (p, 1) };
      Types.Sp_propose { instance = n; round = 2; proposal = p };
      Types.Sp_ack { instance = n; round = 2 };
      Types.Sp_decide { instance = n; proposal = p } ]

let prop_roundtrip (module W : Wire_intf.WIRE with type msg = Types.msg) =
  Test.make
    ~name:(Printf.sprintf "v%d roundtrips random messages" W.version)
    ~count:400 gen_msg (fun m ->
      match W.decode (W.encode m) with
      | Stdlib.Ok m' -> canon m' = canon m
      | Stdlib.Error _ -> false)

let prop_cross_version_agreement =
  (* Decoding a message through either version yields the same message
     (canonically) — upgrading a link cannot change what is delivered. *)
  Test.make ~name:"v1/v2 decode to the same message" ~count:400 gen_msg (fun m ->
      match (WC.V1.decode (WC.V1.encode m), WC.V2.decode (WC.V2.encode m)) with
      | Stdlib.Ok a, Stdlib.Ok b -> canon a = canon b
      | _ -> false)

(* Decoding never raises: every mangled input yields Ok or a typed
   Error. (An [Ok] is legitimate — a flip inside a payload string is a
   different valid message; a truncation at a flag-gated tail decodes
   with the field absent.) *)
let total_decode (module W : Wire_intf.WIRE with type msg = Types.msg) s =
  match W.decode s with
  | Stdlib.Ok _ | Stdlib.Error _ -> true
  | exception e ->
    Printf.eprintf "v%d decode raised %s\n" W.version (Printexc.to_string e);
    false

let prop_truncation_total (module W : Wire_intf.WIRE with type msg = Types.msg)
    =
  Test.make
    ~name:(Printf.sprintf "v%d truncated frames decode totally" W.version)
    ~count:400
    Gen.(pair gen_msg (int_bound 1000))
    (fun (m, cut) ->
      let s = W.encode m in
      let s = String.sub s 0 (cut mod max 1 (String.length s)) in
      total_decode (module W) s)

let prop_byteflip_total (module W : Wire_intf.WIRE with type msg = Types.msg) =
  Test.make
    ~name:(Printf.sprintf "v%d byte-flipped frames decode totally" W.version)
    ~count:600
    Gen.(triple gen_msg (int_bound 10_000) (int_range 1 255))
    (fun (m, pos, x) ->
      let s = Bytes.of_string (W.encode m) in
      let pos = pos mod Bytes.length s in
      Bytes.set s pos (Char.chr (Char.code (Bytes.get s pos) lxor x));
      total_decode (module W) (Bytes.to_string s))

let prop_garbage_total (module W : Wire_intf.WIRE with type msg = Types.msg) =
  Test.make
    ~name:(Printf.sprintf "v%d random garbage decodes totally" W.version)
    ~count:600
    Gen.(string_size (int_bound 64))
    (fun s -> total_decode (module W) s)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let suite =
  [
    ( "wire.versions",
      [
        Alcotest.test_case "every constructor roundtrips" `Quick
          test_every_constructor_roundtrips;
        Alcotest.test_case "negotiate" `Quick test_negotiate;
        Alcotest.test_case "of_version" `Quick test_of_version;
        Alcotest.test_case "cross-version rejection" `Quick
          test_cross_version_rejection;
        Alcotest.test_case "v2 header validation" `Quick
          test_v2_header_validation;
        Alcotest.test_case "decode errors name their codec" `Quick
          test_decode_error_metadata;
      ] );
    ( "wire.properties",
      qcheck
        (List.concat_map
           (fun w ->
             [ prop_roundtrip w; prop_truncation_total w; prop_byteflip_total w;
               prop_garbage_total w ])
           codecs
        @ [ prop_cross_version_agreement ]) );
  ]
