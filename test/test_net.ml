(* TCP transport tests: framing over a socketpair, plus a real loopback
   cluster (3 replicas + a client) driving the same engines the simulator
   runs. *)

module Framing = Grid_net.Framing
module Wire = Grid_codec.Wire
module Wire_codec = Grid_paxos.Wire_codec
module Counter = Grid_services.Counter
module Config = Grid_paxos.Config
open Grid_paxos.Types

module Tcp = Grid_net.Tcp_node.Make (Counter)
module C1 = Framing.Codec (Wire_codec.V1)
module C2 = Framing.Codec (Wire_codec.V2)

(* ------------------------------------------------------------------ *)
(* Framing *)

let read_frame_ok what fd =
  match Framing.read_frame fd with
  | Stdlib.Ok payload -> payload
  | Stdlib.Error e -> Alcotest.failf "%s: %s" what (Format.asprintf "%a" Framing.pp_read_error e)

let test_framing_roundtrip () =
  let a, b = Unix.socketpair PF_UNIX SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      Unix.close a;
      Unix.close b)
    (fun () ->
      let n = Framing.write_frame a "hello frame" in
      Alcotest.(check int) "bytes = header + payload + crc" (4 + 11 + 4) n;
      Alcotest.(check string) "roundtrip" "hello frame" (read_frame_ok "roundtrip" b);
      ignore (Framing.write_frame a "");
      Alcotest.(check string) "empty payload" "" (read_frame_ok "empty" b);
      let big = String.make 100_000 'z' in
      ignore (Framing.write_frame a big);
      Alcotest.(check string) "large payload" big (read_frame_ok "large" b))

let test_framing_closed () =
  let a, b = Unix.socketpair PF_UNIX SOCK_STREAM 0 in
  Unix.close a;
  Fun.protect
    ~finally:(fun () -> Unix.close b)
    (fun () ->
      Alcotest.(check bool) "eof is a typed Eof, not an exception" true
        (Framing.read_frame b = Stdlib.Error Framing.Eof))

let test_framing_corruption () =
  let a, b = Unix.socketpair PF_UNIX SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      Unix.close a;
      Unix.close b)
    (fun () ->
      (* A frame whose CRC does not match its payload. *)
      let bogus = "\x08\x00\x00\x00ABCDWXYZ" in
      ignore (Unix.write_substring a bogus 0 (String.length bogus));
      Alcotest.(check bool) "corruption detected as typed Corrupt" true
        (match Framing.read_frame b with Stdlib.Error (Framing.Corrupt _) -> true | _ -> false))

let test_framing_truncated_body () =
  (* EOF in the middle of a frame body is corruption, not a clean Eof. *)
  let a, b = Unix.socketpair PF_UNIX SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close b)
    (fun () ->
      let partial = "\x40\x00\x00\x00only-a-few-bytes" in
      ignore (Unix.write_substring a partial 0 (String.length partial));
      Unix.close a;
      Alcotest.(check bool) "truncated body is Corrupt" true
        (match Framing.read_frame b with Stdlib.Error (Framing.Corrupt _) -> true | _ -> false))

let sample_msgs =
  [
    Client_req
      { id = Grid_util.Ids.Request_id.make ~client:(Grid_util.Ids.Client_id.of_int 4) ~seq:2;
        rtype = Read;
        payload = "op";
        trace = no_trace };
    Prepare { ballot = Ballot.make ~round:3 ~holder:1; commit_point = 17 };
    Accept
      { ballot = Ballot.make ~round:3 ~holder:1;
        instance = 18;
        proposal = { requests = []; update = Full "state"; replies = [] } };
    Commit { ballot = Ballot.make ~round:3 ~holder:1; instance = 18 };
    Heartbeat
      { round_seen = 5;
        commit_point = 17;
        promised = Ballot.make ~round:3 ~holder:1;
        sent_at = 42.5;
        lease_anchor = 40.0 };
    Catchup { snapshot = "snap" };
  ]

let test_msg_wire_roundtrip () =
  (* Both negotiated codecs must carry the same messages over a socket. *)
  List.iter
    (fun (name, write_msg, read_msg) ->
      let a, b = Unix.socketpair PF_UNIX SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () ->
          Unix.close a;
          Unix.close b)
        (fun () ->
          List.iter (fun m -> ignore (write_msg a m)) sample_msgs;
          List.iter
            (fun expected ->
              match read_msg b with
              | Stdlib.Ok (got, bytes) ->
                Alcotest.(check string)
                  (name ^ ": message kinds match")
                  (msg_kind expected) (msg_kind got);
                Alcotest.(check bool) (name ^ ": byte count positive") true (bytes > 8)
              | Stdlib.Error e ->
                Alcotest.failf "%s: %s" name
                  (Format.asprintf "%a" Framing.pp_read_error e))
            sample_msgs))
    [ ("v1", C1.write_msg, C1.read_msg); ("v2", C2.write_msg, C2.read_msg) ]

(* ------------------------------------------------------------------ *)
(* Loopback cluster *)

let free_port () =
  let fd = Unix.socket PF_INET SOCK_STREAM 0 in
  Unix.bind fd (ADDR_INET (Unix.inet_addr_loopback, 0));
  let port =
    match Unix.getsockname fd with ADDR_INET (_, p) -> p | _ -> assert false
  in
  Unix.close fd;
  port

let test_loopback_cluster () =
  let ports = Array.init 3 (fun _ -> free_port ()) in
  let addr i = Unix.ADDR_INET (Unix.inet_addr_loopback, ports.(i)) in
  let peers_of i =
    List.filter_map (fun j -> if j = i then None else Some (j, addr j)) [ 0; 1; 2 ]
  in
  let cfg =
    Config.make ~n:3 ~hb_period_ms:10.0 ~suspicion_ms:60.0 ~stability_ms:20.0
      ~client_retry_ms:150.0 ~accept_retry_ms:50.0 ()
  in
  let replicas =
    List.map
      (fun i -> Tcp.start_replica ~cfg ~id:i ~port:ports.(i) ~peers:(peers_of i) ())
      [ 0; 1; 2 ]
  in
  Fun.protect
    ~finally:(fun () -> List.iter Tcp.stop_replica replicas)
    (fun () ->
      (* Wait for an election. *)
      let deadline = Unix.gettimeofday () +. 10.0 in
      let rec wait_leader () =
        if List.exists Tcp.replica_is_leader replicas then ()
        else if Unix.gettimeofday () > deadline then
          Alcotest.fail "no leader elected on loopback cluster"
        else begin
          Thread.delay 0.02;
          wait_leader ()
        end
      in
      wait_leader ();
      let client =
        Tcp.start_client ~id:1 ~replicas:(List.map (fun i -> (i, addr i)) [ 0; 1; 2 ]) ()
      in
      Fun.protect
        ~finally:(fun () -> Tcp.stop_client client)
        (fun () ->
          (* Five writes then a read, synchronously. *)
          for k = 1 to 5 do
            match Tcp.call_op client (Counter.Add k) ~timeout_s:5.0 with
            | Some reply -> Alcotest.(check bool) "write ok" true (reply.status = Ok)
            | None -> Alcotest.fail (Printf.sprintf "write %d timed out" k)
          done;
          (match Tcp.call_op client Counter.Get ~timeout_s:5.0 with
          | Some reply ->
            Alcotest.(check int) "read sees all writes" 15
              (Counter.decode_result reply.payload)
          | None -> Alcotest.fail "read timed out");
          (* All replicas converge. *)
          let deadline = Unix.gettimeofday () +. 5.0 in
          let rec wait_converged () =
            let states = List.map Tcp.replica_state replicas in
            if List.for_all (fun s -> s = 15) states then ()
            else if Unix.gettimeofday () > deadline then
              Alcotest.fail
                (Printf.sprintf "replicas did not converge: %s"
                   (String.concat "," (List.map string_of_int states)))
            else begin
              Thread.delay 0.02;
              wait_converged ()
            end
          in
          wait_converged ()))

let test_loopback_mixed_versions () =
  (* One replica capped at wire V1 (an un-upgraded build): connections
     touching it negotiate V1, the V2↔V2 pair keeps V2, and the cluster
     still commits. *)
  let ports = Array.init 3 (fun _ -> free_port ()) in
  let addr i = Unix.ADDR_INET (Unix.inet_addr_loopback, ports.(i)) in
  let peers_of i =
    List.filter_map (fun j -> if j = i then None else Some (j, addr j)) [ 0; 1; 2 ]
  in
  let cfg =
    Config.make ~n:3 ~hb_period_ms:10.0 ~suspicion_ms:60.0 ~stability_ms:20.0
      ~client_retry_ms:150.0 ~accept_retry_ms:50.0 ()
  in
  let version_of = function 1 -> 1 | _ -> 2 in
  let replicas =
    List.map
      (fun i ->
        Tcp.start_replica ~cfg ~id:i ~port:ports.(i) ~peers:(peers_of i)
          ~max_wire_version:(version_of i) ())
      [ 0; 1; 2 ]
  in
  Fun.protect
    ~finally:(fun () -> List.iter Tcp.stop_replica replicas)
    (fun () ->
      let deadline = Unix.gettimeofday () +. 10.0 in
      let rec wait_leader () =
        if List.exists Tcp.replica_is_leader replicas then ()
        else if Unix.gettimeofday () > deadline then
          Alcotest.fail "no leader elected on mixed-version cluster"
        else begin
          Thread.delay 0.02;
          wait_leader ()
        end
      in
      wait_leader ();
      let client =
        Tcp.start_client ~id:1 ~replicas:(List.map (fun i -> (i, addr i)) [ 0; 1; 2 ]) ()
      in
      Fun.protect
        ~finally:(fun () -> Tcp.stop_client client)
        (fun () ->
          for k = 1 to 5 do
            match Tcp.call_op client (Counter.Add k) ~timeout_s:5.0 with
            | Some reply ->
              Alcotest.(check bool) "mixed-version write ok" true (reply.status = Ok)
            | None -> Alcotest.fail (Printf.sprintf "mixed-version write %d timed out" k)
          done;
          (* Every negotiated version is min(local, peer). *)
          List.iteri
            (fun i h ->
              List.iter
                (fun (peer, v) ->
                  if not (node_is_client peer) then
                    Alcotest.(check int)
                      (Printf.sprintf "replica %d <-> %d negotiated min" i peer)
                      (min (version_of i) (version_of peer))
                      v)
                (Tcp.replica_peer_versions h))
            replicas;
          (* The client (latest) speaks V1 to the capped replica and V2 to
             the rest. *)
          List.iter
            (fun (peer, v) ->
              Alcotest.(check int)
                (Printf.sprintf "client <-> replica %d negotiated min" peer)
                (version_of peer) v)
            (Tcp.client_peer_versions client);
          let deadline = Unix.gettimeofday () +. 5.0 in
          let rec wait_converged () =
            let states = List.map Tcp.replica_state replicas in
            if List.for_all (fun s -> s = 15) states then ()
            else if Unix.gettimeofday () > deadline then
              Alcotest.fail
                (Printf.sprintf "mixed-version replicas did not converge: %s"
                   (String.concat "," (List.map string_of_int states)))
            else begin
              Thread.delay 0.02;
              wait_converged ()
            end
          in
          wait_converged ()))

(* ------------------------------------------------------------------ *)
(* Admin endpoint: the replica port answers plain HTTP alongside the
   protocol handshake. *)

let http_get port path =
  let fd = Unix.socket PF_INET SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with _ -> ())
    (fun () ->
      Unix.connect fd (ADDR_INET (Unix.inet_addr_loopback, port));
      let req = Printf.sprintf "GET %s HTTP/1.0\r\n\r\n" path in
      ignore (Unix.write_substring fd req 0 (String.length req));
      let buf = Buffer.create 1024 in
      let chunk = Bytes.create 4096 in
      let rec drain () =
        match Unix.read fd chunk 0 4096 with
        | 0 -> ()
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          drain ()
      in
      (try drain () with Unix.Unix_error _ -> ());
      let raw = Buffer.contents buf in
      let status =
        match String.index_opt raw '\r' with
        | Some i -> String.sub raw 0 i
        | None -> raw
      in
      let body =
        let sep = "\r\n\r\n" in
        let n = String.length raw and k = String.length sep in
        let rec find i =
          if i + k > n then ""
          else if String.sub raw i k = sep then String.sub raw (i + k) (n - i - k)
          else find (i + 1)
        in
        find 0
      in
      (status, body))

let contains haystack needle =
  let n = String.length haystack and k = String.length needle in
  let rec scan i = i + k <= n && (String.sub haystack i k = needle || scan (i + 1)) in
  scan 0

let test_admin_endpoint () =
  let ports = Array.init 3 (fun _ -> free_port ()) in
  let addr i = Unix.ADDR_INET (Unix.inet_addr_loopback, ports.(i)) in
  let peers_of i =
    List.filter_map (fun j -> if j = i then None else Some (j, addr j)) [ 0; 1; 2 ]
  in
  let cfg =
    Config.make ~n:3 ~hb_period_ms:10.0 ~suspicion_ms:60.0 ~stability_ms:20.0
      ~client_retry_ms:150.0 ~accept_retry_ms:50.0 ()
  in
  let replicas =
    List.map
      (fun i -> Tcp.start_replica ~cfg ~id:i ~port:ports.(i) ~peers:(peers_of i) ())
      [ 0; 1; 2 ]
  in
  Fun.protect
    ~finally:(fun () -> List.iter Tcp.stop_replica replicas)
    (fun () ->
      let deadline = Unix.gettimeofday () +. 10.0 in
      let rec wait_leader () =
        if List.exists Tcp.replica_is_leader replicas then ()
        else if Unix.gettimeofday () > deadline then
          Alcotest.fail "no leader elected on loopback cluster"
        else begin
          Thread.delay 0.02;
          wait_leader ()
        end
      in
      wait_leader ();
      let leader_id =
        let rec find i = function
          | [] -> Alcotest.fail "leader vanished"
          | r :: rest -> if Tcp.replica_is_leader r then i else find (i + 1) rest
        in
        find 0 replicas
      in
      (* Commit some work so the scrape reflects live state. *)
      let client =
        Tcp.start_client ~id:1 ~replicas:(List.map (fun i -> (i, addr i)) [ 0; 1; 2 ]) ()
      in
      Fun.protect
        ~finally:(fun () -> Tcp.stop_client client)
        (fun () ->
          for k = 1 to 3 do
            match Tcp.call_op client (Counter.Add k) ~timeout_s:5.0 with
            | Some reply -> Alcotest.(check bool) "write ok" true (reply.status = Ok)
            | None -> Alcotest.fail (Printf.sprintf "write %d timed out" k)
          done;
          (* /health on the leader: role, commit point, zero violations,
             wire-version visibility. *)
          let status, body = http_get ports.(leader_id) "/health" in
          Alcotest.(check bool) "health 200" true (contains status "200");
          Alcotest.(check bool) "health says leader" true
            (contains body {|"role":"leader"|});
          Alcotest.(check bool) "health has commit point" true
            (contains body {|"commit_point":|});
          Alcotest.(check bool) "health watchdog silent" true
            (contains body {|"watchdog_violations":0|});
          Alcotest.(check bool) "health reports wire version" true
            (contains body
               (Printf.sprintf {|"wire_version":%d|} Wire_codec.latest_version));
          Alcotest.(check bool) "health reports peer wire versions" true
            (contains body {|"peer_wire_versions":{|});
          (* No migration has run: epoch 0, idle, nothing moved. *)
          Alcotest.(check bool) "health reports reshard state" true
            (contains body
               {|"reshard":{"epoch":0,"phase":"idle","moved_ranges":0,"imported_items":0}|});
          (* /metrics: Prometheus exposition with transport and watchdog
             series. *)
          let status, body = http_get ports.(leader_id) "/metrics" in
          Alcotest.(check bool) "metrics 200" true (contains status "200");
          Alcotest.(check bool) "metrics transport counters" true
            (contains body "grid_net_messages_sent_total");
          Alcotest.(check bool) "metrics byte counters" true
            (contains body "grid_net_bytes_total");
          Alcotest.(check bool) "metrics per-kind byte counters" true
            (contains body "grid_net_bytes_total_accept");
          Alcotest.(check bool) "metrics per-peer wire version gauges" true
            (contains body "grid_net_wire_version_peer_");
          Alcotest.(check bool) "metrics decode errors silent" true
            (contains body "grid_net_decode_errors_total 0");
          Alcotest.(check bool) "metrics watchdog silent" true
            (contains body "grid_watchdog_violations_total 0");
          Alcotest.(check bool) "metrics reshard epoch gauge" true
            (contains body "grid_reshard_epoch 0");
          Alcotest.(check bool) "metrics reshard migrating gauge" true
            (contains body "grid_reshard_migrating 0");
          (* /flightrec: the always-on recorder dumps parseable JSONL. *)
          let status, body = http_get ports.(leader_id) "/flightrec" in
          Alcotest.(check bool) "flightrec 200" true (contains status "200");
          let events = Grid_obs.Span.load_string body in
          Alcotest.(check bool) "flightrec has events" true (events <> []);
          (* Unknown paths 404; the protocol survives admin traffic. *)
          let status, _ = http_get ports.(leader_id) "/nope" in
          Alcotest.(check bool) "404 on unknown path" true (contains status "404");
          (match Tcp.call_op client Counter.Get ~timeout_s:5.0 with
          | Some reply ->
            Alcotest.(check int) "protocol alive after admin scrapes" 6
              (Counter.decode_result reply.payload)
          | None -> Alcotest.fail "read after admin scrapes timed out");
          List.iter
            (fun r ->
              Alcotest.(check int) "watchdog silent on every replica" 0
                (Grid_obs.Watchdog.violations (Tcp.replica_watchdog r)))
            replicas))

(* The admin sniff must classify a peer by whatever prefix has arrived,
   not stall or guess from the first byte: an HTTP client and a protocol
   peer both dribbling one byte at a time must land on their own path. *)
let test_sniff_dribbling_clients () =
  let port = free_port () in
  let cfg = Config.make ~n:1 ~hb_period_ms:10.0 ~suspicion_ms:60.0 () in
  let r = Tcp.start_replica ~cfg ~id:0 ~port ~peers:[] () in
  Fun.protect
    ~finally:(fun () -> Tcp.stop_replica r)
    (fun () ->
      let addr = Unix.ADDR_INET (Unix.inet_addr_loopback, port) in
      let dribble fd s ~head =
        String.iteri
          (fun i c ->
            ignore (Unix.write_substring fd (String.make 1 c) 0 1);
            if i < head then Thread.delay 0.004)
          s
      in
      (* HTTP client, one byte at a time through the whole method. *)
      let fd = Unix.socket PF_INET SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with _ -> ())
        (fun () ->
          Unix.connect fd addr;
          dribble fd "GET /health HTTP/1.0\r\n\r\n" ~head:6;
          let buf = Bytes.create 4096 in
          let n = try Unix.read fd buf 0 4096 with Unix.Unix_error _ -> 0 in
          let raw = Bytes.sub_string buf 0 (max n 0) in
          Alcotest.(check bool) "dribbled GET answered with HTTP 200" true
            (contains raw "200"));
      (* Protocol peer: capture a real hello frame via a socketpair, then
         dribble its first bytes; the replica must still answer with its
         own hello instead of handing the socket to the HTTP responder. *)
      let sp_a, sp_b = Unix.socketpair PF_UNIX SOCK_STREAM 0 in
      Framing.write_hello sp_a ~node_id:9 ~max_version:Wire_codec.latest_version;
      let hbuf = Bytes.create 256 in
      let hn = Unix.read sp_b hbuf 0 256 in
      Unix.close sp_a;
      Unix.close sp_b;
      let hello_raw = Bytes.sub_string hbuf 0 hn in
      let fd = Unix.socket PF_INET SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with _ -> ())
        (fun () ->
          Unix.connect fd addr;
          dribble fd hello_raw ~head:3;
          match Framing.read_hello fd with
          | Stdlib.Ok (peer, _) ->
            Alcotest.(check int) "dribbled hello negotiated with replica" 0 peer
          | Stdlib.Error e ->
            Alcotest.failf "dribbled protocol peer misclassified: %a"
              Framing.pp_read_error e))

let test_loopback_duplicate_request () =
  (* A client retransmission arriving after the commit must hit the dedup
     table: the leader resends the cached reply and the op is not applied
     a second time. Speaks the wire protocol directly so both copies
     carry the identical request id. *)
  let ports = Array.init 3 (fun _ -> free_port ()) in
  let addr i = Unix.ADDR_INET (Unix.inet_addr_loopback, ports.(i)) in
  let peers_of i =
    List.filter_map (fun j -> if j = i then None else Some (j, addr j)) [ 0; 1; 2 ]
  in
  let cfg =
    Config.make ~n:3 ~hb_period_ms:10.0 ~suspicion_ms:60.0 ~stability_ms:20.0
      ~client_retry_ms:150.0 ~accept_retry_ms:50.0 ()
  in
  let replicas =
    List.map
      (fun i -> Tcp.start_replica ~cfg ~id:i ~port:ports.(i) ~peers:(peers_of i) ())
      [ 0; 1; 2 ]
  in
  Fun.protect
    ~finally:(fun () -> List.iter Tcp.stop_replica replicas)
    (fun () ->
      let deadline = Unix.gettimeofday () +. 10.0 in
      let rec wait_leader () =
        match List.find_opt (fun (_, h) -> Tcp.replica_is_leader h)
                (List.mapi (fun i h -> (i, h)) replicas)
        with
        | Some (i, _) -> i
        | None ->
          if Unix.gettimeofday () > deadline then
            Alcotest.fail "no leader elected on loopback cluster"
          else begin
            Thread.delay 0.02;
            wait_leader ()
          end
      in
      let leader = wait_leader () in
      let fd = Unix.socket PF_INET SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with _ -> ())
        (fun () ->
          Unix.setsockopt fd TCP_NODELAY true;
          Unix.setsockopt_float fd SO_RCVTIMEO 5.0;
          Unix.connect fd (addr leader);
          let cid = Grid_util.Ids.Client_id.of_int 9 in
          (* Speak the handshake by hand: advertise V2, read the
             replica's hello back, and check the negotiation result. *)
          Framing.write_hello fd ~node_id:(client_node cid) ~max_version:2;
          (match Framing.read_hello fd with
          | Stdlib.Ok (peer_id, peer_max) ->
            Alcotest.(check int) "hello echoes the replica id" leader peer_id;
            Alcotest.(check int) "replica advertises latest version"
              Wire_codec.latest_version peer_max
          | Stdlib.Error e ->
            Alcotest.failf "hello ack: %s"
              (Format.asprintf "%a" Framing.pp_read_error e));
          let req =
            { id = Grid_util.Ids.Request_id.make ~client:cid ~seq:1;
              rtype = Write;
              payload = Counter.encode_op (Counter.Add 7);
              trace = no_trace }
          in
          let read_reply what =
            match C2.read_msg fd with
            | Stdlib.Ok (Reply_msg r, _) -> r
            | Stdlib.Ok (m, _) -> Alcotest.failf "%s: expected a reply, got %s" what (msg_kind m)
            | Stdlib.Error e ->
              Alcotest.failf "%s: %s" what
                (Format.asprintf "%a" Framing.pp_read_error e)
          in
          ignore (C2.write_msg fd (Client_req req));
          let r1 = read_reply "first send" in
          Alcotest.(check bool) "first reply ok" true (r1.status = Ok);
          (* Retransmit the identical request after the commit. *)
          ignore (C2.write_msg fd (Client_req req));
          let r2 = read_reply "duplicate send" in
          Alcotest.(check bool) "cached reply ok" true (r2.status = Ok);
          Alcotest.(check string) "cached reply payload identical" r1.payload
            r2.payload;
          (* Exactly-once: the +7 was applied a single time. *)
          let deadline = Unix.gettimeofday () +. 5.0 in
          let rec wait_converged () =
            let states = List.map Tcp.replica_state replicas in
            if List.for_all (fun s -> s = 7) states then ()
            else if Unix.gettimeofday () > deadline then
              Alcotest.fail
                (Printf.sprintf "states after duplicate delivery: %s"
                   (String.concat "," (List.map string_of_int states)))
            else begin
              Thread.delay 0.02;
              wait_converged ()
            end
          in
          wait_converged ()))

let suite =
  [
    ( "net.framing",
      [
        Alcotest.test_case "roundtrip" `Quick test_framing_roundtrip;
        Alcotest.test_case "closed" `Quick test_framing_closed;
        Alcotest.test_case "corruption" `Quick test_framing_corruption;
        Alcotest.test_case "truncated body" `Quick test_framing_truncated_body;
        Alcotest.test_case "msg wire roundtrip (v1+v2)" `Quick test_msg_wire_roundtrip;
      ] );
    ( "net.loopback",
      [
        Alcotest.test_case "3-replica cluster + client" `Slow test_loopback_cluster;
        Alcotest.test_case "mixed wire versions negotiate min" `Slow
          test_loopback_mixed_versions;
        Alcotest.test_case "admin endpoint serves metrics/health/flightrec" `Slow
          test_admin_endpoint;
        Alcotest.test_case "duplicate request hits the dedup table" `Slow
          test_loopback_duplicate_request;
        Alcotest.test_case "sniff classifies dribbling clients" `Slow
          test_sniff_dribbling_clients;
      ] );
  ]
