(* TCP transport tests: framing over a socketpair, plus a real loopback
   cluster (3 replicas + a client) driving the same engines the simulator
   runs. *)

module Framing = Grid_net.Framing
module Wire = Grid_codec.Wire
module Counter = Grid_services.Counter
module Config = Grid_paxos.Config
open Grid_paxos.Types

module Tcp = Grid_net.Tcp_node.Make (Counter)

(* ------------------------------------------------------------------ *)
(* Framing *)

let test_framing_roundtrip () =
  let a, b = Unix.socketpair PF_UNIX SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      Unix.close a;
      Unix.close b)
    (fun () ->
      Framing.write_frame a "hello frame";
      Alcotest.(check string) "roundtrip" "hello frame" (Framing.read_frame b);
      Framing.write_frame a "";
      Alcotest.(check string) "empty payload" "" (Framing.read_frame b);
      let big = String.make 100_000 'z' in
      Framing.write_frame a big;
      Alcotest.(check string) "large payload" big (Framing.read_frame b))

let test_framing_closed () =
  let a, b = Unix.socketpair PF_UNIX SOCK_STREAM 0 in
  Unix.close a;
  Fun.protect
    ~finally:(fun () -> Unix.close b)
    (fun () ->
      Alcotest.check_raises "eof raises Closed" Framing.Closed (fun () ->
          ignore (Framing.read_frame b)))

let test_framing_corruption () =
  let a, b = Unix.socketpair PF_UNIX SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      Unix.close a;
      Unix.close b)
    (fun () ->
      (* A frame whose CRC does not match its payload. *)
      let bogus = "\x08\x00\x00\x00ABCDWXYZ" in
      ignore (Unix.write_substring a bogus 0 (String.length bogus));
      Alcotest.(check bool) "corruption detected" true
        (match Framing.read_frame b with
        | _ -> false
        | exception Wire.Decode_error _ -> true))

let test_msg_wire_roundtrip () =
  let msgs =
    [
      Client_req
        { id = Grid_util.Ids.Request_id.make ~client:(Grid_util.Ids.Client_id.of_int 4) ~seq:2;
          rtype = Read;
          payload = "op";
          trace = no_trace };
      Prepare { ballot = Ballot.make ~round:3 ~holder:1; commit_point = 17 };
      Accept
        { ballot = Ballot.make ~round:3 ~holder:1;
          instance = 18;
          proposal = { requests = []; update = Full "state"; replies = [] } };
      Commit { ballot = Ballot.make ~round:3 ~holder:1; instance = 18 };
      Heartbeat
        { round_seen = 5;
          commit_point = 17;
          promised = Ballot.make ~round:3 ~holder:1;
          sent_at = 42.5;
          lease_anchor = 40.0 };
      Catchup { snapshot = "snap" };
    ]
  in
  let a, b = Unix.socketpair PF_UNIX SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      Unix.close a;
      Unix.close b)
    (fun () ->
      List.iter (Framing.write_msg a) msgs;
      List.iter
        (fun expected ->
          let got = Framing.read_msg b in
          Alcotest.(check string) "message kinds match" (msg_kind expected) (msg_kind got))
        msgs)

(* ------------------------------------------------------------------ *)
(* Loopback cluster *)

let free_port () =
  let fd = Unix.socket PF_INET SOCK_STREAM 0 in
  Unix.bind fd (ADDR_INET (Unix.inet_addr_loopback, 0));
  let port =
    match Unix.getsockname fd with ADDR_INET (_, p) -> p | _ -> assert false
  in
  Unix.close fd;
  port

let test_loopback_cluster () =
  let ports = Array.init 3 (fun _ -> free_port ()) in
  let addr i = Unix.ADDR_INET (Unix.inet_addr_loopback, ports.(i)) in
  let peers_of i =
    List.filter_map (fun j -> if j = i then None else Some (j, addr j)) [ 0; 1; 2 ]
  in
  let cfg =
    Config.make ~n:3 ~hb_period_ms:10.0 ~suspicion_ms:60.0 ~stability_ms:20.0
      ~client_retry_ms:150.0 ~accept_retry_ms:50.0 ()
  in
  let replicas =
    List.map
      (fun i -> Tcp.start_replica ~cfg ~id:i ~port:ports.(i) ~peers:(peers_of i) ())
      [ 0; 1; 2 ]
  in
  Fun.protect
    ~finally:(fun () -> List.iter Tcp.stop_replica replicas)
    (fun () ->
      (* Wait for an election. *)
      let deadline = Unix.gettimeofday () +. 10.0 in
      let rec wait_leader () =
        if List.exists Tcp.replica_is_leader replicas then ()
        else if Unix.gettimeofday () > deadline then
          Alcotest.fail "no leader elected on loopback cluster"
        else begin
          Thread.delay 0.02;
          wait_leader ()
        end
      in
      wait_leader ();
      let client =
        Tcp.start_client ~id:1 ~replicas:(List.map (fun i -> (i, addr i)) [ 0; 1; 2 ]) ()
      in
      Fun.protect
        ~finally:(fun () -> Tcp.stop_client client)
        (fun () ->
          (* Five writes then a read, synchronously. *)
          for k = 1 to 5 do
            match
              Tcp.call client Write ~payload:(Counter.encode_op (Counter.Add k))
                ~timeout_s:5.0
            with
            | Some reply -> Alcotest.(check bool) "write ok" true (reply.status = Ok)
            | None -> Alcotest.fail (Printf.sprintf "write %d timed out" k)
          done;
          (match
             Tcp.call client Read ~payload:(Counter.encode_op Counter.Get) ~timeout_s:5.0
           with
          | Some reply ->
            Alcotest.(check int) "read sees all writes" 15
              (Counter.decode_result reply.payload)
          | None -> Alcotest.fail "read timed out");
          (* All replicas converge. *)
          let deadline = Unix.gettimeofday () +. 5.0 in
          let rec wait_converged () =
            let states = List.map Tcp.replica_state replicas in
            if List.for_all (fun s -> s = 15) states then ()
            else if Unix.gettimeofday () > deadline then
              Alcotest.fail
                (Printf.sprintf "replicas did not converge: %s"
                   (String.concat "," (List.map string_of_int states)))
            else begin
              Thread.delay 0.02;
              wait_converged ()
            end
          in
          wait_converged ()))

(* ------------------------------------------------------------------ *)
(* Admin endpoint: the replica port answers plain HTTP alongside the
   protocol handshake. *)

let http_get port path =
  let fd = Unix.socket PF_INET SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with _ -> ())
    (fun () ->
      Unix.connect fd (ADDR_INET (Unix.inet_addr_loopback, port));
      let req = Printf.sprintf "GET %s HTTP/1.0\r\n\r\n" path in
      ignore (Unix.write_substring fd req 0 (String.length req));
      let buf = Buffer.create 1024 in
      let chunk = Bytes.create 4096 in
      let rec drain () =
        match Unix.read fd chunk 0 4096 with
        | 0 -> ()
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          drain ()
      in
      (try drain () with Unix.Unix_error _ -> ());
      let raw = Buffer.contents buf in
      let status =
        match String.index_opt raw '\r' with
        | Some i -> String.sub raw 0 i
        | None -> raw
      in
      let body =
        let sep = "\r\n\r\n" in
        let n = String.length raw and k = String.length sep in
        let rec find i =
          if i + k > n then ""
          else if String.sub raw i k = sep then String.sub raw (i + k) (n - i - k)
          else find (i + 1)
        in
        find 0
      in
      (status, body))

let contains haystack needle =
  let n = String.length haystack and k = String.length needle in
  let rec scan i = i + k <= n && (String.sub haystack i k = needle || scan (i + 1)) in
  scan 0

let test_admin_endpoint () =
  let ports = Array.init 3 (fun _ -> free_port ()) in
  let addr i = Unix.ADDR_INET (Unix.inet_addr_loopback, ports.(i)) in
  let peers_of i =
    List.filter_map (fun j -> if j = i then None else Some (j, addr j)) [ 0; 1; 2 ]
  in
  let cfg =
    Config.make ~n:3 ~hb_period_ms:10.0 ~suspicion_ms:60.0 ~stability_ms:20.0
      ~client_retry_ms:150.0 ~accept_retry_ms:50.0 ()
  in
  let replicas =
    List.map
      (fun i -> Tcp.start_replica ~cfg ~id:i ~port:ports.(i) ~peers:(peers_of i) ())
      [ 0; 1; 2 ]
  in
  Fun.protect
    ~finally:(fun () -> List.iter Tcp.stop_replica replicas)
    (fun () ->
      let deadline = Unix.gettimeofday () +. 10.0 in
      let rec wait_leader () =
        if List.exists Tcp.replica_is_leader replicas then ()
        else if Unix.gettimeofday () > deadline then
          Alcotest.fail "no leader elected on loopback cluster"
        else begin
          Thread.delay 0.02;
          wait_leader ()
        end
      in
      wait_leader ();
      let leader_id =
        let rec find i = function
          | [] -> Alcotest.fail "leader vanished"
          | r :: rest -> if Tcp.replica_is_leader r then i else find (i + 1) rest
        in
        find 0 replicas
      in
      (* Commit some work so the scrape reflects live state. *)
      let client =
        Tcp.start_client ~id:1 ~replicas:(List.map (fun i -> (i, addr i)) [ 0; 1; 2 ]) ()
      in
      Fun.protect
        ~finally:(fun () -> Tcp.stop_client client)
        (fun () ->
          for k = 1 to 3 do
            match
              Tcp.call client Write ~payload:(Counter.encode_op (Counter.Add k))
                ~timeout_s:5.0
            with
            | Some reply -> Alcotest.(check bool) "write ok" true (reply.status = Ok)
            | None -> Alcotest.fail (Printf.sprintf "write %d timed out" k)
          done;
          (* /health on the leader: role, commit point, zero violations. *)
          let status, body = http_get ports.(leader_id) "/health" in
          Alcotest.(check bool) "health 200" true (contains status "200");
          Alcotest.(check bool) "health says leader" true
            (contains body {|"role":"leader"|});
          Alcotest.(check bool) "health has commit point" true
            (contains body {|"commit_point":|});
          Alcotest.(check bool) "health watchdog silent" true
            (contains body {|"watchdog_violations":0|});
          (* /metrics: Prometheus exposition with transport and watchdog
             series. *)
          let status, body = http_get ports.(leader_id) "/metrics" in
          Alcotest.(check bool) "metrics 200" true (contains status "200");
          Alcotest.(check bool) "metrics transport counters" true
            (contains body "grid_net_messages_sent_total");
          Alcotest.(check bool) "metrics watchdog silent" true
            (contains body "grid_watchdog_violations_total 0");
          (* /flightrec: the always-on recorder dumps parseable JSONL. *)
          let status, body = http_get ports.(leader_id) "/flightrec" in
          Alcotest.(check bool) "flightrec 200" true (contains status "200");
          let events = Grid_obs.Span.load_string body in
          Alcotest.(check bool) "flightrec has events" true (events <> []);
          (* Unknown paths 404; the protocol survives admin traffic. *)
          let status, _ = http_get ports.(leader_id) "/nope" in
          Alcotest.(check bool) "404 on unknown path" true (contains status "404");
          (match
             Tcp.call client Read ~payload:(Counter.encode_op Counter.Get)
               ~timeout_s:5.0
           with
          | Some reply ->
            Alcotest.(check int) "protocol alive after admin scrapes" 6
              (Counter.decode_result reply.payload)
          | None -> Alcotest.fail "read after admin scrapes timed out");
          List.iter
            (fun r ->
              Alcotest.(check int) "watchdog silent on every replica" 0
                (Grid_obs.Watchdog.violations (Tcp.replica_watchdog r)))
            replicas))

let test_loopback_duplicate_request () =
  (* A client retransmission arriving after the commit must hit the dedup
     table: the leader resends the cached reply and the op is not applied
     a second time. Speaks the wire protocol directly so both copies
     carry the identical request id. *)
  let ports = Array.init 3 (fun _ -> free_port ()) in
  let addr i = Unix.ADDR_INET (Unix.inet_addr_loopback, ports.(i)) in
  let peers_of i =
    List.filter_map (fun j -> if j = i then None else Some (j, addr j)) [ 0; 1; 2 ]
  in
  let cfg =
    Config.make ~n:3 ~hb_period_ms:10.0 ~suspicion_ms:60.0 ~stability_ms:20.0
      ~client_retry_ms:150.0 ~accept_retry_ms:50.0 ()
  in
  let replicas =
    List.map
      (fun i -> Tcp.start_replica ~cfg ~id:i ~port:ports.(i) ~peers:(peers_of i) ())
      [ 0; 1; 2 ]
  in
  Fun.protect
    ~finally:(fun () -> List.iter Tcp.stop_replica replicas)
    (fun () ->
      let deadline = Unix.gettimeofday () +. 10.0 in
      let rec wait_leader () =
        match List.find_opt (fun (_, h) -> Tcp.replica_is_leader h)
                (List.mapi (fun i h -> (i, h)) replicas)
        with
        | Some (i, _) -> i
        | None ->
          if Unix.gettimeofday () > deadline then
            Alcotest.fail "no leader elected on loopback cluster"
          else begin
            Thread.delay 0.02;
            wait_leader ()
          end
      in
      let leader = wait_leader () in
      let fd = Unix.socket PF_INET SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with _ -> ())
        (fun () ->
          Unix.setsockopt fd TCP_NODELAY true;
          Unix.setsockopt_float fd SO_RCVTIMEO 5.0;
          Unix.connect fd (addr leader);
          let cid = Grid_util.Ids.Client_id.of_int 9 in
          Framing.write_hello fd ~node_id:(client_node cid);
          let req =
            { id = Grid_util.Ids.Request_id.make ~client:cid ~seq:1;
              rtype = Write;
              payload = Counter.encode_op (Counter.Add 7);
              trace = no_trace }
          in
          let read_reply what =
            match Framing.read_msg fd with
            | Reply_msg r -> r
            | m -> Alcotest.failf "%s: expected a reply, got %s" what (msg_kind m)
          in
          Framing.write_msg fd (Client_req req);
          let r1 = read_reply "first send" in
          Alcotest.(check bool) "first reply ok" true (r1.status = Ok);
          (* Retransmit the identical request after the commit. *)
          Framing.write_msg fd (Client_req req);
          let r2 = read_reply "duplicate send" in
          Alcotest.(check bool) "cached reply ok" true (r2.status = Ok);
          Alcotest.(check string) "cached reply payload identical" r1.payload
            r2.payload;
          (* Exactly-once: the +7 was applied a single time. *)
          let deadline = Unix.gettimeofday () +. 5.0 in
          let rec wait_converged () =
            let states = List.map Tcp.replica_state replicas in
            if List.for_all (fun s -> s = 7) states then ()
            else if Unix.gettimeofday () > deadline then
              Alcotest.fail
                (Printf.sprintf "states after duplicate delivery: %s"
                   (String.concat "," (List.map string_of_int states)))
            else begin
              Thread.delay 0.02;
              wait_converged ()
            end
          in
          wait_converged ()))

let suite =
  [
    ( "net.framing",
      [
        Alcotest.test_case "roundtrip" `Quick test_framing_roundtrip;
        Alcotest.test_case "closed" `Quick test_framing_closed;
        Alcotest.test_case "corruption" `Quick test_framing_corruption;
        Alcotest.test_case "msg wire roundtrip" `Quick test_msg_wire_roundtrip;
      ] );
    ( "net.loopback",
      [
        Alcotest.test_case "3-replica cluster + client" `Slow test_loopback_cluster;
        Alcotest.test_case "admin endpoint serves metrics/health/flightrec" `Slow
          test_admin_endpoint;
        Alcotest.test_case "duplicate request hits the dedup table" `Slow
          test_loopback_duplicate_request;
      ] );
  ]
