(* Unit and property tests for grid_util. *)

module Rng = Grid_util.Rng
module Stats = Grid_util.Stats
module Bitset = Grid_util.Bitset
module Ring_buffer = Grid_util.Ring_buffer
module Text_table = Grid_util.Text_table
module Ids = Grid_util.Ids

let check_float = Alcotest.(check (float 1e-9))
let check_floatish msg ~eps a b = Alcotest.(check (float eps)) msg a b

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_deterministic () =
  let a = Rng.of_int 7 and b = Rng.of_int 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_copy_independent () =
  let a = Rng.of_int 9 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues stream" (Rng.bits64 a) (Rng.bits64 b)

let test_rng_split_diverges () =
  let a = Rng.of_int 11 in
  let b = Rng.split a in
  let same = ref 0 in
  for _ = 1 to 50 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  Alcotest.(check bool) "split streams differ" true (!same < 3)

let test_rng_int_bounds () =
  let r = Rng.of_int 3 in
  for _ = 1 to 10_000 do
    let v = Rng.int r 7 in
    Alcotest.(check bool) "in [0,7)" true (v >= 0 && v < 7)
  done

let test_rng_int_in () =
  let r = Rng.of_int 5 in
  let seen = Array.make 5 false in
  for _ = 1 to 1_000 do
    let v = Rng.int_in r 10 14 in
    Alcotest.(check bool) "in [10,14]" true (v >= 10 && v <= 14);
    seen.(v - 10) <- true
  done;
  Alcotest.(check bool) "all values hit" true (Array.for_all Fun.id seen)

let test_rng_float_bounds () =
  let r = Rng.of_int 17 in
  for _ = 1 to 10_000 do
    let v = Rng.float r 2.5 in
    Alcotest.(check bool) "in [0,2.5)" true (v >= 0.0 && v < 2.5)
  done

let test_rng_uniform_mean () =
  let r = Rng.of_int 23 in
  let acc = Stats.create () in
  for _ = 1 to 100_000 do
    Stats.add acc (Rng.float r 1.0)
  done;
  check_floatish "uniform mean ~0.5" ~eps:0.01 0.5 (Stats.mean acc)

let test_rng_exponential_mean () =
  let r = Rng.of_int 29 in
  let acc = Stats.create () in
  for _ = 1 to 100_000 do
    Stats.add acc (Rng.exponential r ~mean:3.0)
  done;
  check_floatish "exponential mean ~3" ~eps:0.1 3.0 (Stats.mean acc)

let test_rng_normal_moments () =
  let r = Rng.of_int 31 in
  let acc = Stats.create () in
  for _ = 1 to 100_000 do
    Stats.add acc (Rng.normal r ~mu:10.0 ~sigma:2.0)
  done;
  check_floatish "normal mean" ~eps:0.05 10.0 (Stats.mean acc);
  check_floatish "normal sd" ~eps:0.05 2.0 (Stats.stddev acc)

let test_rng_lognormal_mean_cv () =
  let r = Rng.of_int 37 in
  let acc = Stats.create () in
  for _ = 1 to 200_000 do
    Stats.add acc (Rng.lognormal_mean_cv r ~mean:45.0 ~cv:0.1)
  done;
  check_floatish "lognormal real-space mean" ~eps:0.3 45.0 (Stats.mean acc);
  check_floatish "lognormal real-space cv" ~eps:0.01 0.1
    (Stats.stddev acc /. Stats.mean acc)

let test_rng_lognormal_zero_cv () =
  let r = Rng.of_int 41 in
  check_float "cv=0 is the mean" 45.0 (Rng.lognormal_mean_cv r ~mean:45.0 ~cv:0.0)

let test_rng_zipf_bounds_and_skew () =
  let r = Rng.of_int 43 in
  let counts = Array.make 10 0 in
  for _ = 1 to 50_000 do
    let v = Rng.zipf r ~n:10 ~s:1.2 in
    Alcotest.(check bool) "rank in [1,10]" true (v >= 1 && v <= 10);
    counts.(v - 1) <- counts.(v - 1) + 1
  done;
  Alcotest.(check bool) "rank 1 most frequent" true
    (counts.(0) > counts.(1) && counts.(1) > counts.(4))

let test_rng_shuffle_permutes () =
  let r = Rng.of_int 47 in
  let a = Array.init 20 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same elements" (Array.init 20 Fun.id) sorted

let test_rng_permutation () =
  let r = Rng.of_int 53 in
  let p = Rng.permutation r 15 in
  let sorted = Array.copy p in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 15 Fun.id) sorted

let test_rng_pick_singleton () =
  let r = Rng.of_int 59 in
  Alcotest.(check int) "pick singleton" 42 (Rng.pick r [| 42 |]);
  Alcotest.(check int) "pick_list singleton" 42 (Rng.pick_list r [ 42 ])

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_stats_mean_variance () =
  let acc = Stats.create () in
  List.iter (Stats.add acc) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  check_float "mean" 5.0 (Stats.mean acc);
  check_floatish "sample variance" ~eps:1e-9 4.571428571428571 (Stats.variance acc);
  check_float "min" 2.0 (Stats.min_value acc);
  check_float "max" 9.0 (Stats.max_value acc)

let test_stats_empty () =
  let acc = Stats.create () in
  Alcotest.(check bool) "mean of empty is nan" true (Float.is_nan (Stats.mean acc));
  check_float "variance of empty" 0.0 (Stats.variance acc);
  check_float "ci of empty" 0.0 (Stats.confidence_interval acc)

let test_stats_merge () =
  let xs = List.init 50 (fun i -> Float.of_int i *. 0.7) in
  let ys = List.init 37 (fun i -> 100.0 -. Float.of_int i) in
  let all = Stats.create () in
  List.iter (Stats.add all) (xs @ ys);
  let a = Stats.create () and b = Stats.create () in
  List.iter (Stats.add a) xs;
  List.iter (Stats.add b) ys;
  let merged = Stats.merge a b in
  Alcotest.(check int) "count" (Stats.count all) (Stats.count merged);
  check_floatish "mean" ~eps:1e-9 (Stats.mean all) (Stats.mean merged);
  check_floatish "variance" ~eps:1e-6 (Stats.variance all) (Stats.variance merged)

let test_stats_merge_empty () =
  let a = Stats.create () in
  let b = Stats.create () in
  Stats.add b 5.0;
  let m = Stats.merge a b in
  Alcotest.(check int) "count" 1 (Stats.count m);
  check_float "mean" 5.0 (Stats.mean m)

let test_t_quantile_table () =
  check_floatish "df=1 99%" ~eps:1e-3 63.657 (Stats.t_quantile ~confidence:0.99 ~df:1);
  check_floatish "df=19 99% interpolated" ~eps:0.02 2.861
    (Stats.t_quantile ~confidence:0.99 ~df:19);
  check_floatish "df=10 95%" ~eps:1e-3 2.228 (Stats.t_quantile ~confidence:0.95 ~df:10);
  check_floatish "large df approaches normal" ~eps:1e-3 2.5758
    (Stats.t_quantile ~confidence:0.99 ~df:1000)

let test_t_quantile_invalid () =
  Alcotest.check_raises "bad confidence" (Invalid_argument
    "Stats: confidence must be 0.90, 0.95 or 0.99") (fun () ->
      ignore (Stats.t_quantile ~confidence:0.5 ~df:10))

let test_confidence_interval () =
  let acc = Stats.create () in
  List.iter (Stats.add acc) (List.init 20 (fun i -> Float.of_int i));
  (* sd of 0..19 is ~5.916; t(19, 99%) ~ 2.861; ci = t*sd/sqrt(20) *)
  check_floatish "99% ci" ~eps:0.02 3.785 (Stats.confidence_interval acc)

let test_percentiles () =
  let xs = Array.init 101 (fun i -> Float.of_int i) in
  check_float "p50" 50.0 (Stats.percentile (Array.copy xs) 50.0);
  check_float "p0" 0.0 (Stats.percentile (Array.copy xs) 0.0);
  check_float "p100" 100.0 (Stats.percentile (Array.copy xs) 100.0);
  check_float "p25" 25.0 (Stats.percentile (Array.copy xs) 25.0);
  check_float "median singleton" 7.0 (Stats.median [| 7.0 |])

let test_percentile_interpolation () =
  check_float "interpolated" 1.5 (Stats.percentile [| 1.0; 2.0 |] 50.0)

(* Regression: [percentile] once sorted its argument in place, silently
   reordering callers' sample arrays. *)
let test_percentile_no_mutation () =
  let xs = [| 5.0; 1.0; 4.0; 2.0; 3.0 |] in
  let before = Array.copy xs in
  ignore (Stats.percentile xs 50.0);
  ignore (Stats.summarize xs);
  Alcotest.(check (array (float 0.0))) "input untouched" before xs

let test_log_histogram () =
  let h = Stats.Histogram.create_log ~lo:0.1 ~hi:1000.0 ~bins:40 in
  List.iter (Stats.Histogram.add h) [ 0.05; 0.5; 5.0; 50.0; 500.0; 5000.0 ];
  Alcotest.(check int) "total" 6 (Stats.Histogram.total h);
  let edges = Stats.Histogram.bin_edges h in
  Alcotest.(check int) "edges" 41 (Array.length edges);
  check_floatish "first edge" ~eps:1e-9 0.1 edges.(0);
  check_floatish "last edge" ~eps:1e-6 1000.0 edges.(40);
  (* Exponential growth: constant edge ratio. *)
  let r0 = edges.(1) /. edges.(0) and r20 = edges.(21) /. edges.(20) in
  check_floatish "constant ratio" ~eps:1e-9 r0 r20;
  (* Percentile estimate lands within a bucket of the true value. *)
  let h2 = Stats.Histogram.create_log ~lo:1.0 ~hi:1000.0 ~bins:60 in
  for i = 1 to 1000 do
    Stats.Histogram.add h2 (Float.of_int i)
  done;
  let p50 = Stats.Histogram.percentile_estimate h2 50.0 in
  Alcotest.(check bool) "p50 near 500" true (p50 > 440.0 && p50 < 560.0);
  let p99 = Stats.Histogram.percentile_estimate h2 99.0 in
  Alcotest.(check bool) "p99 near 990" true (p99 > 890.0 && p99 < 1090.0)

let test_summarize () =
  let s = Stats.summarize (Array.init 100 (fun i -> Float.of_int i)) in
  Alcotest.(check int) "n" 100 s.n;
  check_float "mean" 49.5 s.mean;
  check_float "min" 0.0 s.min;
  check_float "max" 99.0 s.max;
  check_float "p50" 49.5 s.p50

let test_histogram () =
  let h = Stats.Histogram.create ~lo:0.0 ~hi:10.0 ~bins:10 in
  List.iter (Stats.Histogram.add h) [ 0.5; 1.5; 1.7; 9.5; -3.0; 42.0 ];
  let counts = Stats.Histogram.counts h in
  Alcotest.(check int) "bin 0 (incl clamp below)" 2 counts.(0);
  Alcotest.(check int) "bin 1" 2 counts.(1);
  Alcotest.(check int) "bin 9 (incl clamp above)" 2 counts.(9);
  Alcotest.(check int) "total" 6 (Stats.Histogram.total h);
  Alcotest.(check int) "edges" 11 (Array.length (Stats.Histogram.bin_edges h))

(* ------------------------------------------------------------------ *)
(* Heap (property-based) *)

module Int_heap = Grid_util.Heap.Make (Int)

let prop_heap_sorted =
  QCheck2.Test.make ~name:"heap drains in sorted order" ~count:300
    QCheck2.Gen.(list int)
    (fun xs ->
      let h = Int_heap.create () in
      List.iter (Int_heap.add h) xs;
      let drained = Int_heap.to_sorted_list h in
      drained = List.sort compare xs && Int_heap.check_invariant h)

let prop_heap_min =
  QCheck2.Test.make ~name:"heap min is list min" ~count:300
    QCheck2.Gen.(list_size (int_range 1 50) int)
    (fun xs ->
      let h = Int_heap.create () in
      List.iter (Int_heap.add h) xs;
      Int_heap.min_elt h = Some (List.fold_left min (List.hd xs) xs))

let test_heap_empty () =
  let h = Int_heap.create () in
  Alcotest.(check bool) "is_empty" true (Int_heap.is_empty h);
  Alcotest.(check (option int)) "pop empty" None (Int_heap.pop_min h);
  Alcotest.(check (option int)) "min empty" None (Int_heap.min_elt h)

let test_heap_interleaved () =
  let h = Int_heap.create () in
  Int_heap.add h 5;
  Int_heap.add h 1;
  Alcotest.(check (option int)) "pop 1" (Some 1) (Int_heap.pop_min h);
  Int_heap.add h 3;
  Int_heap.add h 0;
  Alcotest.(check (option int)) "pop 0" (Some 0) (Int_heap.pop_min h);
  Alcotest.(check (option int)) "pop 3" (Some 3) (Int_heap.pop_min h);
  Alcotest.(check (option int)) "pop 5" (Some 5) (Int_heap.pop_min h);
  Alcotest.(check int) "len" 0 (Int_heap.length h)

(* ------------------------------------------------------------------ *)
(* Bitset *)

let test_bitset_basics () =
  let b = Bitset.create 10 in
  Alcotest.(check bool) "empty" true (Bitset.is_empty b);
  Bitset.set b 0;
  Bitset.set b 7;
  Bitset.set b 9;
  Alcotest.(check int) "cardinal" 3 (Bitset.cardinal b);
  Alcotest.(check bool) "mem 7" true (Bitset.mem b 7);
  Alcotest.(check bool) "not mem 5" false (Bitset.mem b 5);
  Bitset.clear_bit b 7;
  Alcotest.(check bool) "cleared" false (Bitset.mem b 7);
  Alcotest.(check (list int)) "to_list" [ 0; 9 ] (Bitset.to_list b)

let test_bitset_set_idempotent () =
  let b = Bitset.create 8 in
  Bitset.set b 3;
  Bitset.set b 3;
  Alcotest.(check int) "cardinal after double set" 1 (Bitset.cardinal b)

let test_bitset_bounds () =
  let b = Bitset.create 8 in
  Alcotest.check_raises "oob" (Invalid_argument "Bitset: index out of range") (fun () ->
      Bitset.set b 8)

let prop_bitset_roundtrip =
  QCheck2.Test.make ~name:"bitset of_list/to_list roundtrip" ~count:200
    QCheck2.Gen.(list_size (int_range 0 30) (int_range 0 63))
    (fun xs ->
      let uniq = List.sort_uniq compare xs in
      Bitset.to_list (Bitset.of_list 64 xs) = uniq)

let prop_bitset_union_inter =
  QCheck2.Test.make ~name:"bitset union/inter match set ops" ~count:200
    QCheck2.Gen.(
      pair (list_size (int_range 0 20) (int_range 0 31)) (list_size (int_range 0 20) (int_range 0 31)))
    (fun (xs, ys) ->
      let module S = Set.Make (Int) in
      let sx = S.of_list xs and sy = S.of_list ys in
      let bx = Bitset.of_list 32 xs and by = Bitset.of_list 32 ys in
      Bitset.to_list (Bitset.union bx by) = S.elements (S.union sx sy)
      && Bitset.to_list (Bitset.inter bx by) = S.elements (S.inter sx sy))

(* ------------------------------------------------------------------ *)
(* Ring buffer *)

let test_ring_basic () =
  let r = Ring_buffer.create 3 in
  Ring_buffer.push r 1;
  Ring_buffer.push r 2;
  Alcotest.(check (list int)) "partial" [ 1; 2 ] (Ring_buffer.to_list r);
  Ring_buffer.push r 3;
  Ring_buffer.push r 4;
  Alcotest.(check (list int)) "evicted oldest" [ 2; 3; 4 ] (Ring_buffer.to_list r);
  Alcotest.(check (option int)) "latest" (Some 4) (Ring_buffer.latest r);
  Alcotest.(check bool) "full" true (Ring_buffer.is_full r);
  Ring_buffer.clear r;
  Alcotest.(check int) "cleared" 0 (Ring_buffer.length r)

let prop_ring_keeps_suffix =
  QCheck2.Test.make ~name:"ring buffer keeps last k" ~count:200
    QCheck2.Gen.(pair (int_range 1 10) (list int))
    (fun (cap, xs) ->
      let r = Ring_buffer.create cap in
      List.iter (Ring_buffer.push r) xs;
      let n = List.length xs in
      let expected = List.filteri (fun i _ -> i >= n - cap) xs in
      Ring_buffer.to_list r = expected)

let test_ring_fold () =
  let r = Ring_buffer.create 4 in
  List.iter (Ring_buffer.push r) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check int) "fold sum" 14 (Ring_buffer.fold ( + ) 0 r)

(* ------------------------------------------------------------------ *)
(* Text table *)

let test_table_render () =
  let t =
    Text_table.create ~columns:[ ("Name", Text_table.Left); ("Value", Text_table.Right) ]
  in
  Text_table.add_row t [ "alpha"; "1.00" ];
  Text_table.add_row t [ "b"; "23.50" ];
  let s = Text_table.render t in
  Alcotest.(check bool) "has header" true
    (String.length s > 0 && String.sub s 0 1 = "|");
  Alcotest.(check bool) "right aligned" true
    (let lines = String.split_on_char '\n' s in
     List.exists (fun l -> l = "| b     | 23.50 |") lines)

let test_table_arity () =
  let t = Text_table.create ~columns:[ ("A", Text_table.Left) ] in
  Alcotest.check_raises "arity" (Invalid_argument "Text_table.add_row: wrong number of cells")
    (fun () -> Text_table.add_row t [ "x"; "y" ])

let test_table_cells () =
  Alcotest.(check string) "cell_f" "1.234" (Text_table.cell_f ~decimals:3 1.2341);
  Alcotest.(check string) "cell_ci" "\xc2\xb10.02" (Text_table.cell_ci ~decimals:2 0.0151)

(* ------------------------------------------------------------------ *)
(* Ids *)

let test_ids () =
  let r = Ids.Replica_id.of_int 3 in
  Alcotest.(check int) "replica roundtrip" 3 (Ids.Replica_id.to_int r);
  let c = Ids.Client_id.of_int 12 in
  let req1 = Ids.Request_id.make ~client:c ~seq:1 in
  let req2 = Ids.Request_id.make ~client:c ~seq:2 in
  Alcotest.(check bool) "request order" true (Ids.Request_id.compare req1 req2 < 0);
  Alcotest.(check bool) "request equal" true
    (Ids.Request_id.equal req1 (Ids.Request_id.make ~client:c ~seq:1));
  Alcotest.check_raises "negative replica" (Invalid_argument "Replica_id.of_int: negative")
    (fun () -> ignore (Ids.Replica_id.of_int (-1)))

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let suite =
  [
    ( "util.rng",
      [
        Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
        Alcotest.test_case "copy independent" `Quick test_rng_copy_independent;
        Alcotest.test_case "split diverges" `Quick test_rng_split_diverges;
        Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
        Alcotest.test_case "int_in hits range" `Quick test_rng_int_in;
        Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
        Alcotest.test_case "uniform mean" `Quick test_rng_uniform_mean;
        Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
        Alcotest.test_case "normal moments" `Quick test_rng_normal_moments;
        Alcotest.test_case "lognormal mean/cv" `Quick test_rng_lognormal_mean_cv;
        Alcotest.test_case "lognormal zero cv" `Quick test_rng_lognormal_zero_cv;
        Alcotest.test_case "zipf bounds and skew" `Quick test_rng_zipf_bounds_and_skew;
        Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes;
        Alcotest.test_case "permutation" `Quick test_rng_permutation;
        Alcotest.test_case "pick singleton" `Quick test_rng_pick_singleton;
      ] );
    ( "util.stats",
      [
        Alcotest.test_case "mean/variance" `Quick test_stats_mean_variance;
        Alcotest.test_case "empty accumulator" `Quick test_stats_empty;
        Alcotest.test_case "merge" `Quick test_stats_merge;
        Alcotest.test_case "merge with empty" `Quick test_stats_merge_empty;
        Alcotest.test_case "t quantiles" `Quick test_t_quantile_table;
        Alcotest.test_case "t quantile invalid confidence" `Quick test_t_quantile_invalid;
        Alcotest.test_case "confidence interval" `Quick test_confidence_interval;
        Alcotest.test_case "percentiles" `Quick test_percentiles;
        Alcotest.test_case "percentile interpolation" `Quick test_percentile_interpolation;
        Alcotest.test_case "percentile leaves input unsorted" `Quick
          test_percentile_no_mutation;
        Alcotest.test_case "summarize" `Quick test_summarize;
        Alcotest.test_case "histogram" `Quick test_histogram;
        Alcotest.test_case "log histogram" `Quick test_log_histogram;
      ] );
    ( "util.heap",
      Alcotest.test_case "empty heap" `Quick test_heap_empty
      :: Alcotest.test_case "interleaved ops" `Quick test_heap_interleaved
      :: qcheck [ prop_heap_sorted; prop_heap_min ] );
    ( "util.bitset",
      Alcotest.test_case "basics" `Quick test_bitset_basics
      :: Alcotest.test_case "idempotent set" `Quick test_bitset_set_idempotent
      :: Alcotest.test_case "bounds" `Quick test_bitset_bounds
      :: qcheck [ prop_bitset_roundtrip; prop_bitset_union_inter ] );
    ( "util.ring_buffer",
      Alcotest.test_case "basics" `Quick test_ring_basic
      :: Alcotest.test_case "fold" `Quick test_ring_fold
      :: qcheck [ prop_ring_keeps_suffix ] );
    ( "util.text_table",
      [
        Alcotest.test_case "render" `Quick test_table_render;
        Alcotest.test_case "arity check" `Quick test_table_arity;
        Alcotest.test_case "cell formatting" `Quick test_table_cells;
      ] );
    ("util.ids", [ Alcotest.test_case "typed ids" `Quick test_ids ]);
  ]
