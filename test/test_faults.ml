(* Fault-injection integration tests: leader crashes, recovery and
   catch-up, partitions, message loss, and durable-storage reload. *)

module Config = Grid_paxos.Config
module Storage = Grid_paxos.Storage
module Scenario = Grid_runtime.Scenario
module Network = Grid_sim.Network
module Counter = Grid_services.Counter
open Grid_paxos.Types

module RT = Grid_runtime.Runtime.Make (Counter)
module Replica = Grid_paxos.Replica.Make (Counter)

let cfg () = Config.make ~n:3 ~record_history:true ()

let add_ops n = List.init n (fun _ -> Counter.Add 1)

let gen_of ops ~client:_ =
  let remaining = ref ops in
  fun () ->
    match !remaining with
    | [] -> None
    | op :: rest ->
      remaining := rest;
      Some (Write, Counter.encode_op op)

let assert_agreement t =
  let histories = Array.init 3 (fun i -> RT.R.committed_updates (RT.replica t i)) in
  let violations = Grid_check.Agreement.check histories in
  Alcotest.(check int)
    (String.concat "; "
       (List.map (Format.asprintf "%a" Grid_check.Agreement.pp_violation) violations))
    0 (List.length violations)

(* ------------------------------------------------------------------ *)

let test_leader_crash_failover () =
  let t = RT.create ~cfg:(cfg ()) ~scenario:(Scenario.uniform ()) () in
  let leader = Option.get (RT.await_leader t) in
  Alcotest.(check int) "r0 leads" 0 leader;
  (* Crash the leader mid-workload. *)
  ignore
    (Grid_sim.Engine.schedule (RT.engine t) ~delay:30.0 (fun () -> RT.crash_replica t 0));
  let results =
    RT.run_closed_loop t ~clients:2 ~requests_per_client:25 ~gen:(gen_of (add_ops 25))
  in
  Alcotest.(check int) "all requests served across the switch" 50
    results.total_completed;
  let new_leader = Option.get (RT.await_leader t) in
  Alcotest.(check bool) "a backup took over" true (new_leader <> 0);
  RT.run_until t (RT.now t +. 1_000.0);
  Alcotest.(check int) "r1 state" 50 (RT.R.state (RT.replica t 1));
  Alcotest.(check int) "r2 state" 50 (RT.R.state (RT.replica t 2))

let test_crashed_leader_recovers_and_catches_up () =
  let t = RT.create ~cfg:(cfg ()) ~scenario:(Scenario.uniform ()) () in
  ignore (RT.await_leader t);
  ignore (Grid_sim.Engine.schedule (RT.engine t) ~delay:20.0 (fun () -> RT.crash_replica t 0));
  let results =
    RT.run_closed_loop t ~clients:1 ~requests_per_client:30 ~gen:(gen_of (add_ops 30))
  in
  Alcotest.(check int) "served" 30 results.total_completed;
  (* Bring r0 back; drive some more traffic so commits (and catch-up)
     reach it, then compare states. *)
  RT.recover_replica t 0;
  let results2 =
    RT.run_closed_loop t ~clients:1 ~requests_per_client:10 ~gen:(gen_of (add_ops 10))
  in
  Alcotest.(check int) "post-recovery traffic served" 10 results2.total_completed;
  RT.run_until t (RT.now t +. 2_000.0);
  Alcotest.(check int) "recovered replica caught up" 40 (RT.R.state (RT.replica t 0));
  assert_agreement t

let test_follower_crash_no_disruption () =
  let t = RT.create ~cfg:(cfg ()) ~scenario:(Scenario.uniform ()) () in
  ignore (RT.await_leader t);
  ignore (Grid_sim.Engine.schedule (RT.engine t) ~delay:10.0 (fun () -> RT.crash_replica t 2));
  let results =
    RT.run_closed_loop t ~clients:2 ~requests_per_client:20 ~gen:(gen_of (add_ops 20))
  in
  Alcotest.(check int) "2-of-3 majority suffices" 40 results.total_completed;
  Alcotest.(check (option int)) "leader unchanged" (Some 0) (RT.leader t);
  RT.recover_replica t 2;
  let _ = RT.run_closed_loop t ~clients:1 ~requests_per_client:5 ~gen:(gen_of (add_ops 5)) in
  RT.run_until t (RT.now t +. 2_000.0);
  Alcotest.(check int) "follower rejoined and caught up" 45
    (RT.R.state (RT.replica t 2));
  assert_agreement t

let test_repeated_leader_crashes () =
  let t = RT.create ~cfg:(cfg ()) ~scenario:(Scenario.uniform ()) () in
  ignore (RT.await_leader t);
  (* Crash whoever leads, three times, with recovery in between. *)
  let eng = RT.engine t in
  let rec schedule_crash round =
    if round < 3 then
      ignore
        (Grid_sim.Engine.schedule eng ~delay:(80.0 +. (400.0 *. Float.of_int round))
           (fun () ->
             match RT.leader t with
             | Some l ->
               RT.crash_replica t l;
               ignore
                 (Grid_sim.Engine.schedule eng ~delay:200.0 (fun () ->
                      RT.recover_replica t l));
               schedule_crash (round + 1)
             | None -> schedule_crash round))
  in
  schedule_crash 0;
  let results =
    RT.run_closed_loop t ~max_sim_ms:60_000.0 ~clients:2 ~requests_per_client:40
      ~gen:(gen_of (add_ops 40))
  in
  Alcotest.(check int) "all served across repeated switches" 80 results.total_completed;
  RT.run_until t (RT.now t +. 3_000.0);
  assert_agreement t;
  (* All live replicas converge. *)
  let states = List.init 3 (fun i -> RT.R.state (RT.replica t i)) in
  Alcotest.(check (list int)) "states converged" [ 80; 80; 80 ] states

let test_partition_minority_leader () =
  (* Cut the leader away from both followers: it must not commit anything
     new; the majority side elects a new leader and continues. *)
  let t = RT.create ~cfg:(cfg ()) ~scenario:(Scenario.uniform ()) () in
  ignore (RT.await_leader t);
  let net = RT.network t in
  ignore
    (Grid_sim.Engine.schedule (RT.engine t) ~delay:25.0 (fun () ->
         Network.partition net [ 0 ] [ 1; 2 ]));
  let results =
    RT.run_closed_loop t ~max_sim_ms:60_000.0 ~clients:1 ~requests_per_client:20
      ~gen:(gen_of (add_ops 20))
  in
  Alcotest.(check int) "majority side serves everything" 20 results.total_completed;
  let new_leader = RT.leader t in
  Alcotest.(check bool) "one of the majority leads" true
    (new_leader = Some 1 || new_leader = Some 2
    || (* the deposed leader may still believe it leads inside the
          partition; the majority side must have its own leader *)
    (RT.R.is_leader (RT.replica t 1) || RT.R.is_leader (RT.replica t 2)));
  (* Heal: the old leader must step down (its ballot is stale) and
     converge. *)
  Network.heal net;
  RT.run_until t (RT.now t +. 3_000.0);
  let _ = RT.run_closed_loop t ~clients:1 ~requests_per_client:5 ~gen:(gen_of (add_ops 5)) in
  RT.run_until t (RT.now t +. 3_000.0);
  assert_agreement t;
  Alcotest.(check int) "old leader converged" 25 (RT.R.state (RT.replica t 0))

let test_message_loss_resilience () =
  let c = Config.make ~base:(cfg ()) ~accept_retry_ms:15.0 ~client_retry_ms:60.0 () in
  let t = RT.create ~cfg:c ~scenario:(Scenario.uniform ()) () in
  ignore (RT.await_leader t);
  Network.set_drop_rate (RT.network t) 0.25;
  let results =
    RT.run_closed_loop t ~max_sim_ms:120_000.0 ~clients:2 ~requests_per_client:15
      ~gen:(gen_of (add_ops 15))
  in
  Alcotest.(check int) "all served despite 25% loss" 30 results.total_completed;
  Network.set_drop_rate (RT.network t) 0.0;
  RT.run_until t (RT.now t +. 3_000.0);
  assert_agreement t;
  Alcotest.(check (list int)) "states converged" [ 30; 30; 30 ]
    (List.init 3 (fun i -> RT.R.state (RT.replica t i)))

let test_duplication_and_reordering () =
  (* Retransmission-style duplicates, FIFO-escaping reorders and delay
     spikes, installed through the declarative fault schedule: every
     request still commits exactly once. *)
  let c = Config.make ~base:(cfg ()) ~accept_retry_ms:15.0 ~client_retry_ms:60.0 () in
  let t = RT.create ~cfg:c ~scenario:(Scenario.uniform ()) () in
  ignore (RT.await_leader t);
  let net = RT.network t in
  let module Fault = Grid_sim.Fault in
  Fault.install net
    [
      { Fault.at = 5.0; event = Fault.Duplicate_rate 0.2 };
      { at = 5.0; event = Fault.Reorder_rate 0.2 };
      { at = 5.0; event = Fault.Delay_spike { rate = 0.05; magnitude_ms = 40.0 } };
    ];
  let results =
    RT.run_closed_loop t ~max_sim_ms:120_000.0 ~clients:2 ~requests_per_client:15
      ~gen:(gen_of (add_ops 15))
  in
  Alcotest.(check int) "all served" 30 results.total_completed;
  (* Quiesce over clean links so every replica converges. *)
  Network.set_duplicate_rate net 0.0;
  Network.set_reorder_rate net 0.0;
  Network.set_delay_spike net ~rate:0.0 ~magnitude_ms:0.0;
  RT.run_until t (RT.now t +. 3_000.0);
  assert_agreement t;
  (* Exactly-once: the +1 increments are not double-applied even though a
     fifth of all messages (client requests included) arrived twice. *)
  Alcotest.(check (list int)) "states converged, no double-apply" [ 30; 30; 30 ]
    (List.init 3 (fun i -> RT.R.state (RT.replica t i)));
  let s = Network.stats net in
  Alcotest.(check bool) "duplicates injected" true (s.Network.duplicated > 0);
  Alcotest.(check bool) "reorders injected" true (s.Network.reordered > 0);
  Alcotest.(check bool) "delay spikes injected" true (s.Network.delayed > 0)

(* ------------------------------------------------------------------ *)
(* Durable storage: a replica reloads its state from disk. *)

let test_file_storage_reload () =
  let dir = Filename.temp_file "grid_reload" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () ->
      let path = Filename.concat dir "r0" in
      let c = Config.make ~n:3 ~snapshot_interval:5 () in
      (* Phase 1: drive a replica directly through the engine API with a
         file store, simulating the leader's persistence. *)
      let store, _, _ = Storage.file ~path in
      let r = Replica.create ~cfg:c ~id:0 ~storage:store () in
      ignore (Replica.bootstrap r);
      (* Manufacture commits by feeding the engine a full leader cycle:
         promote r0 to leader via timers, then have clients write. *)
      let fire timer = ignore (Replica.handle r ~now:0.0 (Timer timer)) in
      fire Suspicion_tick;
      ignore (Replica.handle r ~now:100.0 (Timer Suspicion_tick));
      ignore (Replica.handle r ~now:200.0 (Timer (Stability_check 0)));
      (* r0 is now candidate; feed prepare acks from 1 and 2. *)
      let b = Replica.ballot r in
      let ack src =
        ignore
          (Replica.handle r ~now:210.0
             (Receive
                {
                  src;
                  msg =
                    Prepare_ack { ballot = b; commit_point = 0; snapshot = None; accepted = [] };
                }))
      in
      ack 1;
      Alcotest.(check bool) "leader after majority" true (Replica.is_leader r);
      (* Three writes, each accepted by replica 1. *)
      for seq = 1 to 3 do
        let req =
          {
            id = Grid_util.Ids.Request_id.make ~client:(Grid_util.Ids.Client_id.of_int 1) ~seq;
            rtype = Write;
            payload = Counter.encode_op (Counter.Add 10);
            trace = no_trace;
          }
        in
        ignore
          (Replica.handle r ~now:(220.0 +. Float.of_int seq)
             (Receive { src = client_node req.id.client; msg = Client_req req }));
        ignore
          (Replica.handle r ~now:(221.0 +. Float.of_int seq)
             (Receive
                {
                  src = 1;
                  msg = Accept_ack { ballot = Replica.ballot r; instance = seq };
                }))
      done;
      Alcotest.(check int) "three commits" 3 (Replica.commit_point r);
      Alcotest.(check int) "state 30" 30 (Replica.state r);
      (* Phase 2: "restart the process" — a fresh replica loads the files. *)
      let _store2, recovered, _ = Storage.file ~path in
      let r2 = Replica.create ~cfg:c ~id:0 () in
      (match recovered with
      | Some p -> Replica.load r2 p
      | None -> Alcotest.fail "expected persisted image");
      Alcotest.(check int) "commit point restored" 3 (Replica.commit_point r2);
      Alcotest.(check int) "state restored" 30 (Replica.state r2);
      Alcotest.(check bool) "promise restored" true
        (Ballot.compare (Replica.promised r2) Ballot.zero > 0))

let suite =
  [
    ( "faults.crashes",
      [
        Alcotest.test_case "leader crash failover" `Quick test_leader_crash_failover;
        Alcotest.test_case "crashed leader recovers + catches up" `Quick
          test_crashed_leader_recovers_and_catches_up;
        Alcotest.test_case "follower crash tolerated" `Quick
          test_follower_crash_no_disruption;
        Alcotest.test_case "repeated leader crashes" `Quick test_repeated_leader_crashes;
      ] );
    ( "faults.network",
      [
        Alcotest.test_case "partitioned minority leader" `Quick
          test_partition_minority_leader;
        Alcotest.test_case "25% message loss" `Quick test_message_loss_resilience;
        Alcotest.test_case "duplication + reordering + delay spikes" `Quick
          test_duplication_and_reordering;
      ] );
    ( "faults.durability",
      [ Alcotest.test_case "file-storage reload" `Quick test_file_storage_reload ] );
  ]
