(* Tests for the discrete-event engine, latency models, simulated network
   and fault injection. *)

module Engine = Grid_sim.Engine
module Latency = Grid_sim.Latency
module Network = Grid_sim.Network
module Fault = Grid_sim.Fault
module Recorder = Grid_obs.Span.Recorder
module Rng = Grid_util.Rng
module Stats = Grid_util.Stats

(* ------------------------------------------------------------------ *)
(* Engine *)

let test_engine_order () =
  let eng = Engine.create () in
  let log = ref [] in
  ignore (Engine.schedule eng ~delay:3.0 (fun () -> log := 3 :: !log));
  ignore (Engine.schedule eng ~delay:1.0 (fun () -> log := 1 :: !log));
  ignore (Engine.schedule eng ~delay:2.0 (fun () -> log := 2 :: !log));
  Engine.run eng;
  Alcotest.(check (list int)) "time order" [ 1; 2; 3 ] (List.rev !log);
  Alcotest.(check (float 1e-9)) "now at last event" 3.0 (Engine.now eng)

let test_engine_fifo_ties () =
  let eng = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    ignore (Engine.schedule eng ~delay:1.0 (fun () -> log := i :: !log))
  done;
  Engine.run eng;
  Alcotest.(check (list int)) "insertion order at same time" [ 1; 2; 3; 4; 5 ]
    (List.rev !log)

let test_engine_cancel () =
  let eng = Engine.create () in
  let fired = ref false in
  let t = Engine.schedule eng ~delay:1.0 (fun () -> fired := true) in
  Alcotest.(check int) "pending" 1 (Engine.pending eng);
  Engine.cancel eng t;
  Alcotest.(check int) "pending after cancel" 0 (Engine.pending eng);
  Engine.run eng;
  Alcotest.(check bool) "not fired" false !fired;
  Engine.cancel eng t (* idempotent *)

let test_engine_until () =
  let eng = Engine.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    ignore (Engine.schedule eng ~delay:(Float.of_int i) (fun () -> incr count))
  done;
  Engine.run ~until:5.5 eng;
  Alcotest.(check int) "events before horizon" 5 !count;
  Alcotest.(check (float 1e-9)) "now at horizon" 5.5 (Engine.now eng);
  Engine.run eng;
  Alcotest.(check int) "rest run later" 10 !count

let test_engine_nested_schedule () =
  let eng = Engine.create () in
  let log = ref [] in
  ignore
    (Engine.schedule eng ~delay:1.0 (fun () ->
         log := "outer" :: !log;
         ignore (Engine.schedule eng ~delay:0.0 (fun () -> log := "inner" :: !log))));
  Engine.run eng;
  Alcotest.(check (list string)) "nested zero-delay fires" [ "outer"; "inner" ]
    (List.rev !log)

let test_engine_negative_delay_clamped () =
  let eng = Engine.create () in
  let at = ref (-1.0) in
  ignore (Engine.schedule eng ~delay:5.0 (fun () ->
       ignore (Engine.schedule eng ~delay:(-3.0) (fun () -> at := Engine.now eng))));
  Engine.run eng;
  Alcotest.(check (float 1e-9)) "clamped to now" 5.0 !at

let test_engine_max_events () =
  let eng = Engine.create () in
  (* A self-perpetuating event chain. *)
  let rec arm () = ignore (Engine.schedule eng ~delay:1.0 arm) in
  arm ();
  Engine.run ~max_events:50 eng;
  Alcotest.(check int) "bounded" 50 (Engine.fired eng)

(* ------------------------------------------------------------------ *)
(* Latency models *)

let test_latency_constant () =
  let rng = Rng.of_int 1 in
  Alcotest.(check (float 1e-9)) "constant" 2.5 (Latency.sample (Constant 2.5) rng);
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Latency.mean (Constant 2.5))

let sample_mean model n =
  let rng = Rng.of_int 99 in
  let acc = Stats.create () in
  for _ = 1 to n do
    Stats.add acc (Latency.sample model rng)
  done;
  acc

let test_latency_uniform () =
  let acc = sample_mean (Uniform { lo = 1.0; hi = 3.0 }) 50_000 in
  Alcotest.(check (float 0.02)) "mean" 2.0 (Stats.mean acc);
  Alcotest.(check bool) "bounds" true (Stats.min_value acc >= 1.0 && Stats.max_value acc < 3.0)

let test_latency_lognormal () =
  let acc = sample_mean (Lognormal { mean = 45.0; cv = 0.1 }) 100_000 in
  Alcotest.(check (float 0.3)) "real-space mean" 45.0 (Stats.mean acc);
  Alcotest.(check bool) "never negative" true (Stats.min_value acc >= 0.0)

let test_latency_exponential_shifted () =
  let acc = sample_mean (Exponential_shifted { base = 1.0; mean_extra = 2.0 }) 50_000 in
  Alcotest.(check (float 0.1)) "mean" 3.0 (Stats.mean acc);
  Alcotest.(check bool) "floor at base" true (Stats.min_value acc >= 1.0)

let test_latency_empirical () =
  let rng = Rng.of_int 5 in
  let model = Latency.Empirical [| 1.0; 2.0; 3.0 |] in
  for _ = 1 to 100 do
    let v = Latency.sample model rng in
    Alcotest.(check bool) "one of samples" true (List.mem v [ 1.0; 2.0; 3.0 ])
  done;
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Latency.mean model);
  Alcotest.(check (float 1e-9)) "empty empirical" 0.0
    (Latency.sample (Empirical [||]) rng)

let test_latency_scale () =
  Alcotest.(check (float 1e-9)) "scaled constant" 5.0
    (Latency.mean (Latency.scale (Constant 2.5) 2.0));
  Alcotest.(check (float 1e-9)) "scaled lognormal mean" 90.0
    (Latency.mean (Latency.scale (Lognormal { mean = 45.0; cv = 0.1 }) 2.0))

(* ------------------------------------------------------------------ *)
(* Network *)

let mk_net () =
  let eng = Engine.create () in
  let net = Network.create eng (Rng.of_int 7) in
  (eng, net)

let test_network_delivery () =
  let eng, net = mk_net () in
  let got = ref [] in
  Network.add_node net ~id:0 (fun ~src:_ _ -> ());
  Network.add_node net ~id:1 (fun ~src msg -> got := (src, msg, Engine.now eng) :: !got);
  Network.set_link net ~src:0 ~dst:1 (Constant 2.0);
  Network.send net ~src:0 ~dst:1 "hello";
  Engine.run eng;
  match !got with
  | [ (src, msg, at) ] ->
    Alcotest.(check int) "src" 0 src;
    Alcotest.(check string) "payload" "hello" msg;
    Alcotest.(check (float 1e-9)) "latency" 2.0 at
  | _ -> Alcotest.fail "expected exactly one delivery"

let test_network_fifo_per_pair () =
  let eng = Engine.create () in
  let net = Network.create eng (Rng.of_int 11) in
  let got = ref [] in
  Network.add_node net ~id:0 (fun ~src:_ _ -> ());
  Network.add_node net ~id:1 (fun ~src:_ msg -> got := msg :: !got);
  (* High-variance link: without the FIFO clamp, later sends could
     overtake earlier ones. *)
  Network.set_link net ~src:0 ~dst:1 (Uniform { lo = 0.1; hi = 10.0 });
  for i = 1 to 50 do
    Network.send net ~src:0 ~dst:1 (string_of_int i)
  done;
  Engine.run eng;
  Alcotest.(check (list string)) "in order"
    (List.init 50 (fun i -> string_of_int (i + 1)))
    (List.rev !got)

let test_network_crash_drops () =
  let eng, net = mk_net () in
  let got = ref 0 in
  Network.add_node net ~id:0 (fun ~src:_ _ -> ());
  Network.add_node net ~id:1 (fun ~src:_ _ -> incr got);
  Network.crash net 1;
  Network.send net ~src:0 ~dst:1 "lost";
  Engine.run eng;
  Alcotest.(check int) "dropped" 0 !got;
  Alcotest.(check bool) "counted" true ((Network.stats net).dropped >= 1);
  Network.recover net 1;
  Network.send net ~src:0 ~dst:1 "ok";
  Engine.run eng;
  Alcotest.(check int) "delivered after recover" 1 !got

let test_network_crashed_sender () =
  let eng, net = mk_net () in
  let got = ref 0 in
  Network.add_node net ~id:0 (fun ~src:_ _ -> ());
  Network.add_node net ~id:1 (fun ~src:_ _ -> incr got);
  Network.crash net 0;
  Network.send net ~src:0 ~dst:1 "from the grave";
  Engine.run eng;
  Alcotest.(check int) "crashed node cannot send" 0 !got

let test_network_inflight_to_crashed () =
  let eng, net = mk_net () in
  let got = ref 0 in
  Network.add_node net ~id:0 (fun ~src:_ _ -> ());
  Network.add_node net ~id:1 (fun ~src:_ _ -> incr got);
  Network.set_link net ~src:0 ~dst:1 (Constant 5.0);
  Network.send net ~src:0 ~dst:1 "in flight";
  ignore (Engine.schedule eng ~delay:1.0 (fun () -> Network.crash net 1));
  Engine.run eng;
  Alcotest.(check int) "in-flight message to crashed node dropped" 0 !got

let test_network_partition_heal () =
  let eng, net = mk_net () in
  let got = ref 0 in
  Network.add_node net ~id:0 (fun ~src:_ _ -> ());
  Network.add_node net ~id:1 (fun ~src:_ _ -> incr got);
  Network.partition net [ 0 ] [ 1 ];
  Network.send net ~src:0 ~dst:1 "cut";
  Engine.run eng;
  Alcotest.(check int) "partitioned" 0 !got;
  Network.heal net;
  Network.send net ~src:0 ~dst:1 "healed";
  Engine.run eng;
  Alcotest.(check int) "after heal" 1 !got

let test_network_drop_rate () =
  let eng, net = mk_net () in
  let got = ref 0 in
  Network.add_node net ~id:0 (fun ~src:_ _ -> ());
  Network.add_node net ~id:1 (fun ~src:_ _ -> incr got);
  Network.set_drop_rate net 1.0;
  for _ = 1 to 20 do
    Network.send net ~src:0 ~dst:1 "x"
  done;
  Engine.run eng;
  Alcotest.(check int) "all dropped" 0 !got;
  Network.set_drop_rate net 0.0;
  Network.send net ~src:0 ~dst:1 "y";
  Engine.run eng;
  Alcotest.(check int) "back to reliable" 1 !got

let test_network_cpu_serialization () =
  (* Two messages arriving together at a node with recv_cost are processed
     back to back, not in parallel. *)
  let eng, net = mk_net () in
  let times = ref [] in
  Network.add_node net ~id:0 (fun ~src:_ _ -> ());
  Network.add_node net ~id:2 (fun ~src:_ _ -> ());
  Network.add_node net ~id:1 ~recv_cost:1.0 (fun ~src:_ _ ->
      times := Engine.now eng :: !times);
  Network.set_link net ~src:0 ~dst:1 (Constant 1.0);
  Network.set_link net ~src:2 ~dst:1 (Constant 1.0);
  Network.send net ~src:0 ~dst:1 "a";
  Network.send net ~src:2 ~dst:1 "b";
  Engine.run eng;
  (match List.rev !times with
  | [ t1; t2 ] ->
    Alcotest.(check (float 1e-9)) "first done at 2" 2.0 t1;
    Alcotest.(check (float 1e-9)) "second queued behind" 3.0 t2
  | _ -> Alcotest.fail "expected two deliveries");
  (* Send cost delays departure of back-to-back sends. *)
  let eng2 = Engine.create () in
  let net2 = Network.create eng2 (Rng.of_int 3) in
  let times2 = ref [] in
  Network.add_node net2 ~id:0 ~send_cost:0.5 (fun ~src:_ _ -> ());
  Network.add_node net2 ~id:1 (fun ~src:_ _ -> times2 := Engine.now eng2 :: !times2);
  Network.set_link net2 ~src:0 ~dst:1 (Constant 1.0);
  Network.send net2 ~src:0 ~dst:1 "a";
  Network.send net2 ~src:0 ~dst:1 "b";
  Engine.run eng2;
  match List.rev !times2 with
  | [ t1; t2 ] ->
    Alcotest.(check (float 1e-9)) "first departs at 0.5" 1.5 t1;
    Alcotest.(check (float 1e-9)) "second departs at 1.0" 2.0 t2
  | _ -> Alcotest.fail "expected two deliveries"

let test_network_unknown_node () =
  let eng, net = mk_net () in
  ignore eng;
  Network.add_node net ~id:0 (fun ~src:_ _ -> ());
  Network.send net ~src:0 ~dst:42 "void";
  Alcotest.(check int) "dropped" 1 (Network.stats net).dropped

let test_network_broadcast () =
  let eng, net = mk_net () in
  let got = ref 0 in
  Network.add_node net ~id:0 (fun ~src:_ _ -> ());
  Network.add_node net ~id:1 (fun ~src:_ _ -> incr got);
  Network.add_node net ~id:2 (fun ~src:_ _ -> incr got);
  Network.broadcast net ~src:0 ~dsts:[ 1; 2 ] "all";
  Engine.run eng;
  Alcotest.(check int) "both delivered" 2 !got

(* ------------------------------------------------------------------ *)
(* Fault schedules *)

let test_fault_schedule () =
  let eng, net = mk_net () in
  Network.add_node net ~id:0 (fun ~src:_ _ -> ());
  Fault.install net
    [
      { at = 5.0; event = Crash 0 };
      { at = 10.0; event = Recover 0 };
    ];
  Engine.run ~until:6.0 eng;
  Alcotest.(check bool) "down at 6" false (Network.is_up net 0);
  Engine.run ~until:11.0 eng;
  Alcotest.(check bool) "up at 11" true (Network.is_up net 0)

let test_fault_periodic () =
  let entries =
    Fault.periodic_crash_recover ~node:2 ~period:100.0 ~downtime:10.0 ~until:350.0
  in
  Alcotest.(check int) "three crash/recover pairs" 6 (List.length entries);
  let crashes =
    List.filter (fun (e : Fault.entry) -> match e.event with Crash _ -> true | _ -> false) entries
  in
  Alcotest.(check (list (float 1e-9))) "crash times" [ 100.0; 200.0; 300.0 ]
    (List.map (fun (e : Fault.entry) -> e.at) crashes)

(* ------------------------------------------------------------------ *)
(* Trace notes via the span recorder (what drivers use for Note actions) *)

let test_trace () =
  let tr = Recorder.create ~capacity:3 ~enabled:true () in
  Recorder.note tr ~time:1.0 ~actor:"a" "one";
  Recorder.notef tr ~time:2.0 ~actor:"b" "two %d" 2;
  Recorder.note tr ~time:3.0 ~actor:"c" "three";
  Recorder.note tr ~time:4.0 ~actor:"d" "four";
  Alcotest.(check int) "bounded" 3 (List.length (Recorder.events tr));
  let disabled = Recorder.create ~enabled:false () in
  Recorder.note disabled ~time:1.0 ~actor:"x" "ignored";
  Recorder.notef disabled ~time:1.0 ~actor:"x" "ignored %d" 1;
  Alcotest.(check int) "disabled records nothing" 0 (List.length (Recorder.events disabled))

let suite =
  [
    ( "sim.engine",
      [
        Alcotest.test_case "time order" `Quick test_engine_order;
        Alcotest.test_case "fifo ties" `Quick test_engine_fifo_ties;
        Alcotest.test_case "cancel" `Quick test_engine_cancel;
        Alcotest.test_case "run until" `Quick test_engine_until;
        Alcotest.test_case "nested schedule" `Quick test_engine_nested_schedule;
        Alcotest.test_case "negative delay clamps" `Quick test_engine_negative_delay_clamped;
        Alcotest.test_case "max events" `Quick test_engine_max_events;
      ] );
    ( "sim.latency",
      [
        Alcotest.test_case "constant" `Quick test_latency_constant;
        Alcotest.test_case "uniform" `Quick test_latency_uniform;
        Alcotest.test_case "lognormal" `Quick test_latency_lognormal;
        Alcotest.test_case "exponential shifted" `Quick test_latency_exponential_shifted;
        Alcotest.test_case "empirical" `Quick test_latency_empirical;
        Alcotest.test_case "scale" `Quick test_latency_scale;
      ] );
    ( "sim.network",
      [
        Alcotest.test_case "delivery" `Quick test_network_delivery;
        Alcotest.test_case "fifo per pair" `Quick test_network_fifo_per_pair;
        Alcotest.test_case "crash drops" `Quick test_network_crash_drops;
        Alcotest.test_case "crashed sender" `Quick test_network_crashed_sender;
        Alcotest.test_case "in-flight to crashed" `Quick test_network_inflight_to_crashed;
        Alcotest.test_case "partition/heal" `Quick test_network_partition_heal;
        Alcotest.test_case "drop rate" `Quick test_network_drop_rate;
        Alcotest.test_case "cpu serialization" `Quick test_network_cpu_serialization;
        Alcotest.test_case "unknown node" `Quick test_network_unknown_node;
        Alcotest.test_case "broadcast" `Quick test_network_broadcast;
      ] );
    ( "sim.fault",
      [
        Alcotest.test_case "schedule" `Quick test_fault_schedule;
        Alcotest.test_case "periodic" `Quick test_fault_periodic;
      ] );
    ("sim.trace", [ Alcotest.test_case "bounded + disabled" `Quick test_trace ]);
  ]
