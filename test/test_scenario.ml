(* Tests for the calibrated scenarios and the full message wire codec. *)

module Scenario = Grid_runtime.Scenario
module Latency = Grid_sim.Latency
module Rng = Grid_util.Rng
module Ids = Grid_util.Ids
module Wire = Grid_codec.Wire
open Grid_paxos.Types

(* ------------------------------------------------------------------ *)
(* Scenario structure *)

let test_scenario_shapes () =
  List.iter
    (fun (sc : Scenario.t) ->
      Alcotest.(check int) (sc.name ^ " has 3 replicas") 3 sc.n;
      (* Latency models are sane: positive means, symmetric replica links. *)
      for i = 0 to 2 do
        for j = 0 to 2 do
          if i <> j then begin
            let m = Latency.mean (sc.replica_link i j) in
            Alcotest.(check bool) "positive replica latency" true (m > 0.0);
            Alcotest.(check (float 1e-9)) "symmetric replica links" m
              (Latency.mean (sc.replica_link j i))
          end
        done;
        Alcotest.(check bool) "positive client latency" true
          (Latency.mean (sc.client_link i) > 0.0)
      done)
    [ Scenario.sysnet; Scenario.princeton; Scenario.wan ]

let test_sysnet_is_lan () =
  let sc = Scenario.sysnet in
  Alcotest.(check bool) "sub-ms links" true
    (Latency.mean (sc.replica_link 0 1) < 1.0 && Latency.mean (sc.client_link 0) < 1.0)

let test_wan_leader_is_closest_to_no_one () =
  (* WAN: the client is far from the leader (UIUC) but closer to the
     followers — the geometry behind Figure 8's read advantage. *)
  let sc = Scenario.wan in
  let to_leader = Latency.mean (sc.client_link 0) in
  let to_follower = Latency.mean (sc.client_link 1) in
  Alcotest.(check bool) "followers closer to clients" true (to_follower < to_leader)

let test_scale_latency () =
  let sc = Scenario.scale_latency Scenario.sysnet 10.0 in
  Alcotest.(check (float 1e-6)) "scaled replica link"
    (10.0 *. Latency.mean (Scenario.sysnet.replica_link 0 1))
    (Latency.mean (sc.replica_link 0 1))

let test_with_cv () =
  let sc = Scenario.with_cv Scenario.wan 0.5 in
  (match sc.replica_link 0 1 with
  | Latency.Lognormal { cv; mean } ->
    Alcotest.(check (float 1e-9)) "cv replaced" 0.5 cv;
    Alcotest.(check (float 1e-9)) "mean kept"
      (Latency.mean (Scenario.wan.replica_link 0 1))
      mean
  | _ -> Alcotest.fail "expected lognormal");
  (* Means unchanged so calibration survives the sweep. *)
  Alcotest.(check (float 1e-9)) "client mean kept"
    (Latency.mean (Scenario.wan.client_link 0))
    (Latency.mean (sc.client_link 0))

let test_with_n () =
  let sc = Scenario.with_n Scenario.wan 5 in
  Alcotest.(check int) "five replicas" 5 sc.n;
  (* Tiled links stay defined and positive. *)
  for i = 0 to 4 do
    for j = 0 to 4 do
      if i <> j then
        Alcotest.(check bool) "tiled link positive" true
          (Latency.mean (sc.replica_link i j) >= 0.0)
    done
  done

let test_clients_per_machine () =
  let f = Scenario.sysnet.clients_per_machine in
  Alcotest.(check int) "8 clients -> 1 per host" 1 (f 8);
  Alcotest.(check int) "16 clients -> 2" 2 (f 16);
  Alcotest.(check int) "128 clients -> 16" 16 (f 128)

let test_server_load_factor () =
  let f = Scenario.sysnet.server_load_factor in
  Alcotest.(check bool) "grows with clients" true (f 128 > f 8);
  Alcotest.(check bool) "wan flat" true
    (Scenario.wan.server_load_factor 128 = Scenario.wan.server_load_factor 1)

(* ------------------------------------------------------------------ *)
(* Full message codec property over every variant. *)

let gen_ballot =
  QCheck2.Gen.(
    map (fun (r, h) -> Ballot.make ~round:r ~holder:h) (pair (int_range 0 100) (int_range 0 6)))

let gen_request =
  QCheck2.Gen.(
    map
      (fun (c, s, p) ->
        ({ id = Ids.Request_id.make ~client:(Ids.Client_id.of_int c) ~seq:s;
           rtype = Write; payload = p; trace = no_trace } : request))
      (triple (int_range 0 50) (int_range 0 1000) (string_size (int_range 0 12))))

let gen_reply =
  QCheck2.Gen.(
    map
      (fun (c, s, p) ->
        ({ req = Ids.Request_id.make ~client:(Ids.Client_id.of_int c) ~seq:s;
           status = Ok; payload = p } : reply))
      (triple (int_range 0 50) (int_range 0 1000) (string_size (int_range 0 12))))

let gen_proposal =
  QCheck2.Gen.(
    map
      (fun (reqs, s, replies) ->
        ({ requests = reqs; update = Full s; replies } : proposal))
      (triple (list_size (int_range 0 3) gen_request) (string_size (int_range 0 12))
         (list_size (int_range 0 3) gen_reply)))

let gen_msg =
  QCheck2.Gen.(
    oneof
      [
        map (fun r -> Client_req r) gen_request;
        map (fun r -> Reply_msg r) gen_reply;
        map2 (fun b cp -> Prepare { ballot = b; commit_point = cp }) gen_ballot (int_range 0 500);
        map
          (fun (b, cp, snap, entries) ->
            Prepare_ack
              { ballot = b; commit_point = cp; snapshot = snap;
                accepted =
                  List.mapi (fun k (bb, p) -> { instance = cp + k + 1; ballot = bb; proposal = p }) entries })
          (quad gen_ballot (int_range 0 500) (option (string_size (int_range 0 12)))
             (list_size (int_range 0 2) (pair gen_ballot gen_proposal)));
        map2 (fun (b, i) p -> Accept { ballot = b; instance = i; proposal = p })
          (pair gen_ballot (int_range 1 500)) gen_proposal;
        map (fun (b, i) -> Accept_ack { ballot = b; instance = i })
          (pair gen_ballot (int_range 1 500));
        map (fun b -> Reject { promised = b }) gen_ballot;
        map (fun (b, i) -> Commit { ballot = b; instance = i })
          (pair gen_ballot (int_range 1 500));
        map2 (fun (b, a) (c, s) ->
            Read_confirm
              { ballot = b;
                req = Ids.Request_id.make ~client:(Ids.Client_id.of_int c) ~seq:s;
                lease_anchor = Float.of_int a })
          (pair gen_ballot (int_range 0 1000)) (pair (int_range 0 50) (int_range 0 500));
        map2 (fun (rs, cp) (b, sa) ->
            Heartbeat
              { round_seen = rs;
                commit_point = cp;
                promised = b;
                sent_at = Float.of_int sa;
                lease_anchor = Float.of_int sa -. 7.5 })
          (pair (int_range 0 100) (int_range 0 500)) (pair gen_ballot (int_range 0 1000));
        map (fun i -> Catchup_req { from_instance = i }) (int_range 1 500);
        map (fun s -> Catchup { snapshot = s }) (string_size (int_range 0 12));
        map
          (fun (i, r, est) -> Sp_estimate { instance = i; round = r; estimate = est })
          (triple (int_range 1 100) (int_range 0 20) (option (pair gen_proposal (int_range 0 20))));
        map (fun ((i, r), p) -> Sp_propose { instance = i; round = r; proposal = p })
          (pair (pair (int_range 1 100) (int_range 0 20)) gen_proposal);
        map (fun (i, r) -> Sp_ack { instance = i; round = r })
          (pair (int_range 1 100) (int_range 0 20));
        map (fun (i, p) -> Sp_decide { instance = i; proposal = p })
          (pair (int_range 1 100) gen_proposal);
      ])

let prop_msg_roundtrip =
  QCheck2.Test.make ~name:"every msg variant roundtrips on the wire" ~count:500 gen_msg
    (fun m ->
      let encoded = Wire.encode (fun e -> encode_msg e m) in
      let decoded = Wire.decode encoded decode_msg in
      decoded = m)

let prop_msg_size_positive =
  QCheck2.Test.make ~name:"msg_size positive and bounded by encoding" ~count:300 gen_msg
    (fun m ->
      let est = msg_size m in
      est > 0)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let suite =
  [
    ( "scenario",
      [
        Alcotest.test_case "shapes" `Quick test_scenario_shapes;
        Alcotest.test_case "sysnet is a LAN" `Quick test_sysnet_is_lan;
        Alcotest.test_case "wan geometry" `Quick test_wan_leader_is_closest_to_no_one;
        Alcotest.test_case "scale_latency" `Quick test_scale_latency;
        Alcotest.test_case "with_cv keeps calibration" `Quick test_with_cv;
        Alcotest.test_case "with_n tiles links" `Quick test_with_n;
        Alcotest.test_case "clients per machine" `Quick test_clients_per_machine;
        Alcotest.test_case "server load factor" `Quick test_server_load_factor;
      ] );
    ("wire.msg", qcheck [ prop_msg_roundtrip; prop_msg_size_positive ]);
  ]
