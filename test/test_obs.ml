(* Tests for the observability layer: JSON emitter/parser, the metrics
   registry and its Prometheus exposition, span JSONL round-trips,
   lifecycle reconstruction from a traced simulation (including the
   X-Paxos read shape: no accept round), and trace determinism (same
   seed => byte-identical dump). *)

module Json = Grid_obs.Json
module Metrics = Grid_obs.Metrics
module Span = Grid_obs.Span
module Lifecycle = Grid_obs.Lifecycle
module Ids = Grid_util.Ids
module Scenario = Grid_runtime.Scenario
module Noop = Grid_services.Noop
module Stress = Grid_check.Stress
open Grid_paxos.Types
module RT = Grid_runtime.Runtime.Make (Noop)

(* ------------------------------------------------------------------ *)
(* JSON *)

let test_json_roundtrip () =
  let doc =
    Json.Obj
      [ ("s", Json.Str "a \"quoted\" \\ line\nwith\ttabs");
        ("n", Json.Num 3.25); ("i", Json.int 42); ("neg", Json.Num (-0.125));
        ("big", Json.Num 1e300); ("null", Json.Null); ("t", Json.Bool true);
        ("arr", Json.Arr [ Json.int 1; Json.Str "x"; Json.Obj [] ]);
        ("empty", Json.Arr []) ]
  in
  let s = Json.to_string doc in
  let reparsed = Json.of_string s in
  Alcotest.(check string) "emit-parse-emit fixpoint" s (Json.to_string reparsed);
  let pretty = Json.to_string_pretty doc in
  Alcotest.(check string) "pretty parses to same doc" s
    (Json.to_string (Json.of_string pretty))

let test_json_parse_escapes () =
  let v = Json.of_string {|{"u": "Aé", "e": "\n\t\\\""}|} in
  Alcotest.(check (option string)) "unicode escapes" (Some "A\xc3\xa9")
    (Option.bind (Json.member "u" v) Json.to_str);
  Alcotest.(check (option string)) "control escapes" (Some "\n\t\\\"")
    (Option.bind (Json.member "e" v) Json.to_str)

let test_json_errors () =
  let bad = [ ""; "{"; "[1,"; "nul"; {|{"a" 1}|}; "1 2"; {|"unterminated|} ] in
  List.iter
    (fun s ->
      match Json.of_string s with
      | exception Json.Parse_error _ -> ()
      | _ -> Alcotest.failf "accepted malformed input %S" s)
    bad

(* ------------------------------------------------------------------ *)
(* Metrics registry *)

let test_metrics_counters_gauges () =
  let m = Metrics.create () in
  let c = Metrics.counter m "requests_total" ~help:"Requests" in
  let g = Metrics.gauge m "depth" ~help:"Queue depth" in
  Metrics.inc c;
  Metrics.inc ~by:4 c;
  Metrics.set g 2.5;
  Alcotest.(check int) "counter" 5 (Metrics.counter_value c);
  Alcotest.(check (float 0.0)) "gauge" 2.5 (Metrics.gauge_value g);
  (match Metrics.counter m "requests_total" ~help:"dup" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate registration accepted");
  let json = Metrics.to_json m in
  let value name =
    Option.bind (Json.member name json) (fun m ->
        Option.bind (Json.member "value" m) Json.to_int)
  in
  Alcotest.(check (option int)) "counter in snapshot" (Some 5) (value "requests_total")

let test_metrics_histogram () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "lat_ms" ~help:"Latency" ~lo:0.1 ~hi:1000.0 ~bins:40 in
  List.iter (Metrics.observe h) [ 0.5; 1.0; 2.0; 40.0; 400.0 ];
  let json = Metrics.to_json m in
  let hist = Option.get (Json.member "lat_ms" json) in
  Alcotest.(check (option int)) "count" (Some 5)
    (Option.bind (Json.member "count" hist) Json.to_int);
  let sum = Option.bind (Json.member "sum" hist) Json.to_float in
  Alcotest.(check (option (float 1e-9))) "sum" (Some 443.5) sum

let test_metrics_exposition () =
  let m = Metrics.create () in
  let c = Metrics.counter m "b_total" ~help:"Second" in
  let _g = Metrics.gauge m "a_depth" ~help:"First" in
  let h = Metrics.histogram m "lat" ~help:"Hist" ~lo:1.0 ~hi:100.0 ~bins:2 in
  Metrics.inc ~by:3 c;
  Metrics.observe h 5.0;
  Metrics.observe h 50.0;
  let text = Metrics.expose m in
  (* Names sorted; HELP/TYPE precede samples; histogram is cumulative
     with +Inf, _sum and _count. *)
  let expected =
    "# HELP a_depth First\n# TYPE a_depth gauge\na_depth 0\n\
     # HELP b_total Second\n# TYPE b_total counter\nb_total 3\n\
     # HELP lat Hist\n# TYPE lat histogram\n\
     lat_bucket{le=\"10\"} 1\nlat_bucket{le=\"100\"} 2\n\
     lat_bucket{le=\"+Inf\"} 2\nlat_sum 55\nlat_count 2\n"
  in
  Alcotest.(check string) "exposition golden" expected text

let test_metrics_unregister () =
  let m = Metrics.create () in
  let g = Metrics.gauge m "grid_net_backoff_ms_peer_1" ~help:"Backoff" in
  Metrics.set g 40.0;
  Alcotest.(check bool) "registered" true (Metrics.mem m "grid_net_backoff_ms_peer_1");
  Metrics.unregister m "grid_net_backoff_ms_peer_1";
  Alcotest.(check bool) "gone" false (Metrics.mem m "grid_net_backoff_ms_peer_1");
  Alcotest.(check string) "exposition empty" "" (Metrics.expose m);
  (* The name is free again: a restarted node re-registers cleanly. *)
  let g' = Metrics.gauge m "grid_net_backoff_ms_peer_1" ~help:"Backoff" in
  Metrics.set g' 0.0;
  Alcotest.(check (float 0.0)) "fresh gauge" 0.0 (Metrics.gauge_value g');
  (* Unregistering an absent name is a no-op, not an error. *)
  Metrics.unregister m "never_registered"

(* ------------------------------------------------------------------ *)
(* Span recorder and JSONL *)

let req ~client ~seq = { Ids.Request_id.client = Ids.Client_id.of_int client; seq }

let test_recorder_disabled_records_nothing () =
  let r = Span.Recorder.create ~enabled:false () in
  Span.Recorder.span r ~time:1.0 ~actor:"r0" ~req:(req ~client:0 ~seq:1)
    ~instance:0 ~detail:"" Span.Propose;
  Span.Recorder.msg r ~time:1.0 ~actor:"r0" ~kind:"accept" ~dst:1;
  Span.Recorder.note r ~time:1.0 ~actor:"r0" "boo";
  Alcotest.(check int) "empty" 0 (Span.Recorder.length r);
  Alcotest.(check bool) "disabled" false (Span.Recorder.enabled r)

let test_span_jsonl_roundtrip () =
  let events =
    [ { Span.time = 0.0; actor = "c0";
        body = Span.Span { req = req ~client:0 ~seq:1; phase = Span.Client_send;
                           instance = -1; detail = ""; tid = 0; parent = "" } };
      { Span.time = 35.125; actor = "r0";
        body = Span.Span { req = req ~client:0 ~seq:1; phase = Span.Leader_receive;
                           instance = -1; detail = "write"; tid = 7; parent = "c0:client_send" } };
      { Span.time = 36.0; actor = "r0"; body = Span.Msg { kind = "accept"; dst = 2 } };
      { Span.time = 37.5; actor = "r1"; body = Span.Note "leader changed" } ]
  in
  let dump = Span.dump_string events in
  let loaded = Span.load_string dump in
  Alcotest.(check int) "all lines parse" (List.length events) (List.length loaded);
  Alcotest.(check string) "dump-load-dump fixpoint" dump (Span.dump_string loaded);
  (* Malformed and blank lines are skipped, valid ones survive. *)
  let dirty = "\n" ^ dump ^ "garbage{\n" in
  Alcotest.(check int) "dirty load" (List.length events)
    (List.length (Span.load_string dirty))

(* ------------------------------------------------------------------ *)
(* Lifecycle over a traced simulation *)

let traced_run ~rtype ~seed =
  let cfg = Grid_paxos.Config.default ~n:3 in
  let t = RT.create ~cfg ~scenario:Scenario.wan ~seed ~trace:true () in
  let payload =
    Noop.encode_op (match rtype with Read -> Noop.Noop_read | _ -> Noop.Noop_write)
  in
  let _results =
    RT.run_closed_loop t ~clients:2 ~requests_per_client:5 ~gen:(fun ~client:_ () ->
        Some (rtype, payload))
  in
  Span.Recorder.events (RT.obs t)

let test_lifecycle_write_breakdown () =
  let events = traced_run ~rtype:Write ~seed:11 in
  let timelines = Lifecycle.timelines events in
  let completed = List.filter Lifecycle.completed timelines in
  Alcotest.(check int) "all 10 requests completed" 10 (List.length completed);
  List.iter
    (fun (tl : Lifecycle.timeline) ->
      Alcotest.(check bool) "classified basic" true
        (tl.Lifecycle.protocol = Lifecycle.Basic);
      (* Writes go through the accept round. *)
      Alcotest.(check bool) "has propose" true
        (Lifecycle.phase_time tl Span.Propose <> None);
      Alcotest.(check bool) "has accept quorum" true
        (Lifecycle.phase_time tl Span.Accept_quorum <> None);
      match Lifecycle.breakdown tl with
      | None -> Alcotest.fail "no breakdown for completed request"
      | Some b ->
        Alcotest.(check bool) "M recorded" true (Float.is_finite b.Lifecycle.m_wan);
        Alcotest.(check bool) "2m recorded" true (Float.is_finite b.Lifecycle.m_lan2);
        Alcotest.(check bool) "total positive" true (b.Lifecycle.total > 0.0))
    completed

let test_lifecycle_read_skips_accept () =
  let events = traced_run ~rtype:Read ~seed:11 in
  let completed = List.filter Lifecycle.completed (Lifecycle.timelines events) in
  Alcotest.(check bool) "some reads completed" true (completed <> []);
  List.iter
    (fun (tl : Lifecycle.timeline) ->
      Alcotest.(check bool) "classified x-paxos read" true
        (tl.Lifecycle.protocol = Lifecycle.Xpaxos_read);
      (* The X-Paxos optimization: reads never enter the accept round. *)
      Alcotest.(check (option (float 0.0))) "no propose" None
        (Lifecycle.phase_time tl Span.Propose);
      Alcotest.(check (option (float 0.0))) "no accept quorum" None
        (Lifecycle.phase_time tl Span.Accept_quorum);
      match Lifecycle.breakdown tl with
      | None -> Alcotest.fail "no breakdown"
      | Some b ->
        Alcotest.(check bool) "2m absent (nan)" true (Float.is_nan b.Lifecycle.m_lan2))
    completed;
  (* And the per-protocol rollup classifies them the same way. *)
  match Lifecycle.phase_stats events with
  | [ s ] ->
    Alcotest.(check bool) "stats protocol" true (s.Lifecycle.protocol = Lifecycle.Xpaxos_read);
    Alcotest.(check int) "stats count" (List.length completed) s.Lifecycle.count
  | l -> Alcotest.failf "expected one protocol class, got %d" (List.length l)

let test_lifecycle_find_and_slowest () =
  let events = traced_run ~rtype:Write ~seed:3 in
  let slow = Lifecycle.slowest ~n:3 events in
  Alcotest.(check int) "three slowest" 3 (List.length slow);
  (match slow with
  | (_, a) :: (_, b) :: _ ->
    Alcotest.(check bool) "sorted desc" true (a.Lifecycle.total >= b.Lifecycle.total)
  | _ -> Alcotest.fail "unreachable");
  let tl, _ = List.hd slow in
  (match Lifecycle.find events tl.Lifecycle.req with
  | Some found ->
    Alcotest.(check bool) "find returns same request" true
      (found.Lifecycle.req = tl.Lifecycle.req)
  | None -> Alcotest.fail "find lost a request");
  Alcotest.(check bool) "message counts non-empty" true
    (Lifecycle.message_counts events <> [])

(* Satellite: the M/E/2m classification must survive shard-tagged actor
   labels — a sharded run records "s<k>/r<i>" and "s<k>/c<j>" actors, and
   the lifecycle layer classifies each group's requests exactly as it
   does a single-group run. *)
let test_lifecycle_shard_tagged () =
  let module MKv = Grid_shard.Multi.Make (Grid_services.Kv_store) in
  let cfg = Grid_paxos.Config.default ~n:3 in
  let t =
    MKv.create ~seed:17 ~trace:true ~cfg ~scenario:(Scenario.uniform ())
      ~route:Grid_services.Kv_store.route ~shards:2 ()
  in
  let _ =
    MKv.run_closed_loop t ~clients:2 ~requests_per_client:4
      ~gen:(fun ~client () ->
        Some
          (Grid_runtime.Runtime.Do
             (Grid_services.Kv_store.Put
                { key = Printf.sprintf "k%d" client; value = "v" })))
  in
  let events = Span.Recorder.events (MKv.obs t) in
  let tagged =
    List.exists
      (fun (e : Span.event) ->
        String.length e.Span.actor > 3 && String.sub e.Span.actor 0 3 = "s1/")
      events
  in
  Alcotest.(check bool) "some spans tagged s1/" true tagged;
  let completed = List.filter Lifecycle.completed (Lifecycle.timelines events) in
  Alcotest.(check int) "all 8 requests completed" 8 (List.length completed);
  List.iter
    (fun (tl : Lifecycle.timeline) ->
      Alcotest.(check bool) "classified basic" true
        (tl.Lifecycle.protocol = Lifecycle.Basic);
      match Lifecycle.breakdown tl with
      | None -> Alcotest.fail "no breakdown for sharded request"
      | Some b ->
        Alcotest.(check bool) "M recorded" true (Float.is_finite b.Lifecycle.m_wan);
        Alcotest.(check bool) "2m recorded" true
          (Float.is_finite b.Lifecycle.m_lan2))
    completed

(* The simulator's latency metrics registry fills during a run. *)
let test_runtime_metrics () =
  let cfg = Grid_paxos.Config.default ~n:3 in
  let t = RT.create ~cfg ~scenario:Scenario.sysnet ~seed:5 () in
  let payload = Noop.encode_op Noop.Noop_write in
  let _ =
    RT.run_closed_loop t ~clients:1 ~requests_per_client:8 ~gen:(fun ~client:_ () ->
        Some (Write, payload))
  in
  let json = Metrics.to_json (RT.metrics t) in
  let value name =
    Option.bind (Json.member name json) (fun m ->
        Option.bind (Json.member "value" m) Json.to_int)
  in
  Alcotest.(check (option int)) "requests counted" (Some 8) (value "grid_requests_total");
  Alcotest.(check (option int)) "replies counted" (Some 8) (value "grid_replies_total");
  let lat = Option.get (Json.member "grid_request_latency_ms" json) in
  Alcotest.(check (option int)) "latencies observed" (Some 8)
    (Option.bind (Json.member "count" lat) Json.to_int);
  let text = Metrics.expose (RT.metrics t) in
  Alcotest.(check bool) "exposition mentions histogram" true
    (let re = "grid_request_latency_ms_count" in
     let len = String.length re in
     let n = String.length text in
     let rec scan i = i + len <= n && (String.sub text i len = re || scan (i + 1)) in
     scan 0)

(* ------------------------------------------------------------------ *)
(* Determinism: same seed => byte-identical trace dump *)

let test_sim_trace_deterministic () =
  let dump seed =
    Span.dump_string (traced_run ~rtype:Write ~seed)
  in
  Alcotest.(check string) "same seed, same bytes" (dump 7) (dump 7);
  Alcotest.(check bool) "different seed differs" true (dump 7 <> dump 8)

let test_stress_trace_deterministic () =
  let dump seed =
    let obs = Span.Recorder.create ~enabled:true () in
    let _ =
      Stress.run_one ~service:Stress.Counter_service ~obs ~steps:400
        ~shrink:false ~seed ()
    in
    Span.dump_string (Span.Recorder.events obs)
  in
  let d = dump 21 in
  Alcotest.(check bool) "trace non-empty" true (String.length d > 0);
  Alcotest.(check string) "nemesis run deterministic" d (dump 21)

let suite =
  [
    ( "obs.json",
      [
        Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
        Alcotest.test_case "escapes" `Quick test_json_parse_escapes;
        Alcotest.test_case "malformed rejected" `Quick test_json_errors;
      ] );
    ( "obs.metrics",
      [
        Alcotest.test_case "counters and gauges" `Quick test_metrics_counters_gauges;
        Alcotest.test_case "histogram snapshot" `Quick test_metrics_histogram;
        Alcotest.test_case "prometheus exposition" `Quick test_metrics_exposition;
        Alcotest.test_case "unregister" `Quick test_metrics_unregister;
      ] );
    ( "obs.span",
      [
        Alcotest.test_case "disabled recorder is inert" `Quick
          test_recorder_disabled_records_nothing;
        Alcotest.test_case "jsonl roundtrip" `Quick test_span_jsonl_roundtrip;
      ] );
    ( "obs.lifecycle",
      [
        Alcotest.test_case "write breakdown (M/E/2m)" `Quick
          test_lifecycle_write_breakdown;
        Alcotest.test_case "x-paxos reads skip accept round" `Quick
          test_lifecycle_read_skips_accept;
        Alcotest.test_case "find and slowest" `Quick test_lifecycle_find_and_slowest;
        Alcotest.test_case "shard-tagged actors classify" `Quick
          test_lifecycle_shard_tagged;
        Alcotest.test_case "runtime metrics registry" `Quick test_runtime_metrics;
      ] );
    ( "obs.determinism",
      [
        Alcotest.test_case "sim trace byte-identical per seed" `Quick
          test_sim_trace_deterministic;
        Alcotest.test_case "stress trace byte-identical per seed" `Quick
          test_stress_trace_deterministic;
      ] );
  ]
