(* Aggregates every suite; `dune runtest` runs this executable. *)

let () =
  Alcotest.run "grid_replication"
    (List.concat
       [
         Test_util.suite;
         Test_obs.suite;
         Test_watchdog.suite;
         Test_codec.suite;
         Test_wire.suite;
         Test_sim.suite;
         Test_paxos_unit.suite;
         Test_replica_unit.suite;
         Test_election_unit.suite;
         Test_semi_passive.suite;
         Test_services.suite;
         Test_lease.suite;
         Test_replication.suite;
         Test_faults.suite;
         Test_txn.suite;
         Test_check.suite;
      Test_stress.suite;
         Test_net.suite;
         Test_workload.suite;
         Test_scenario.suite;
         Test_shard.suite;
         Test_xshard.suite;
         Test_reshard.suite;
         Test_overload.suite;
       ])
